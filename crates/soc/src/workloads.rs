//! Benchmark workloads: the attack scenarios and the pre-characterization
//! stimulus.
//!
//! Paper §6: "The benchmark we use ... includes illegal memory write and
//! read operations." Each attack workload configures the MPU in privileged
//! mode, drops to user mode, performs legal warm-up traffic, then attempts
//! the illegal access; the trap handler isolates the process when the MPU
//! catches it. The *attack goal* predicate decides, on a finished (possibly
//! faulty) run, whether the attacker achieved the illegal effect without
//! being isolated — the indicator variable `e` of the SSF definition.

use crate::asm::assemble;
use crate::soc::Soc;
use serde::{Deserialize, Serialize};

/// Address of the user scratch buffer (inside the user region).
pub const USER_BUF: u16 = 0x4000;
/// Address of the leak buffer used by the read scenario.
pub const LEAK_ADDR: u16 = 0x4800;
/// Address of the protected word (outside every user region).
pub const SECRET_ADDR: u16 = 0x7000;
/// The secret value stored at [`SECRET_ADDR`] during privileged setup.
pub const SECRET_VALUE: u32 = 0x51ec;
/// The marker value the write scenario tries to plant at [`SECRET_ADDR`].
pub const ATTACK_VALUE: u32 = 0xbeef;
/// Address of the trap handler's diagnostic dump word (user-readable).
pub const DUMP_ADDR: u16 = 0x4c00;
/// Address of the guard variable armed by the instruction-skip scenario.
pub const GUARD_ADDR: u16 = 0x5c00;

/// What the attacker is trying to achieve (paper §3.1, scenario 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttackGoal {
    /// Plant [`ATTACK_VALUE`] at the protected address without being
    /// isolated.
    IllegalWrite,
    /// Copy the protected secret into the user-readable leak buffer without
    /// being isolated.
    IllegalRead,
    /// Trick the trap handler into taking its diagnostic path on a spurious
    /// MPU fault, dumping privileged register residue into user-readable
    /// memory, without being isolated.
    PrivilegeEscalation,
    /// Make execution skip the guard-arming store so the fall-through leak
    /// runs, without being isolated.
    InstructionSkip,
}

impl AttackGoal {
    /// Evaluate the success indicator `e` on a finished run: the illegal
    /// effect happened *and* the security response never fired.
    pub fn succeeded(self, soc: &Soc) -> bool {
        let isolated = soc.core.isolated != 0;
        match self {
            AttackGoal::IllegalWrite => soc.mem_word(SECRET_ADDR) == ATTACK_VALUE && !isolated,
            AttackGoal::IllegalRead => soc.mem_word(LEAK_ADDR) == SECRET_VALUE && !isolated,
            AttackGoal::PrivilegeEscalation => soc.mem_word(DUMP_ADDR) == SECRET_VALUE && !isolated,
            AttackGoal::InstructionSkip => {
                soc.mem_word(GUARD_ADDR) == 0
                    && soc.mem_word(LEAK_ADDR) == ATTACK_VALUE
                    && !isolated
            }
        }
    }
}

/// A benchmark: program image plus the attack-goal predicate.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short name used in reports.
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// The assembled memory image.
    pub program: Vec<u32>,
    /// The success predicate.
    pub goal: AttackGoal,
}

/// The shared privileged prologue: program the MPU (region 0 = user RWX
/// over `[0, 0x5fff]`, region 1 = user read-only over `[0x6000, 0x60ff]`),
/// plant the secret, install the handler and drop to user mode.
/// `extra_config` is spliced in before the handler installation (still in
/// privileged mode) for workloads that need additional regions.
fn prologue_with(extra_config: &str) -> String {
    format!(
        "
        ; ---------------- privileged setup ----------------
        li   r1, 0x8100
        li   r2, 0x0000
        sw   r2, 0(r1)        ; region0.base
        li   r2, 0x5fff
        sw   r2, 4(r1)        ; region0.limit
        li   r2, 0xf
        sw   r2, 8(r1)        ; region0.perms = RWX|USER
        li   r2, 0x6000
        sw   r2, 12(r1)       ; region1.base
        li   r2, 0x60ff
        sw   r2, 16(r1)       ; region1.limit
        li   r2, 0x9
        sw   r2, 20(r1)       ; region1.perms = R|USER
        li   r2, 1
        sw   r2, 0x30(r1)     ; global enable
        li   r3, {secret_addr}
        li   r4, {secret_value}
        sw   r4, 0(r3)        ; plant the protected secret
        {extra_config}
        li   r5, handler
        csrrw r0, tvec, r5
        li   r6, user_entry
        csrrw r0, epc, r6
        mret                  ; drop to user mode
        ",
        secret_addr = SECRET_ADDR,
        secret_value = SECRET_VALUE,
    )
}

fn prologue() -> String {
    prologue_with("")
}

/// The shared trap handler: isolate on MPU fault, halt on `ecall`.
const EPILOGUE: &str = "
        ecall                 ; normal end of the user program
    handler:
        csrrw r12, cause, r0
        li   r13, 1
        beq  r12, r13, fault
        halt                  ; ecall path: clean termination
    fault:
        csrrw r0, isolated, r13
        halt                  ; security response: process isolated
        ";

/// Legal warm-up traffic: `iters` iterations of mixed ALU, load and store
/// activity inside the user regions, to give the attack a realistic window
/// of preceding cycles and the pre-characterization genuine toggling.
fn warmup(iters: u32) -> String {
    format!(
        "
        li   r2, 0
        li   r4, {iters}
    warm:
        addi r2, r2, 1
        sll  r7, r2, r2
        lw   r8, {user_buf}(r0)
        add  r8, r8, r7
        sw   r8, {user_buf}(r0)
        lw   r9, 0x6000(r0)   ; legal read-only region access
        bne  r2, r4, warm
        ",
        user_buf = USER_BUF,
    )
}

/// The illegal-memory-write benchmark (paper §6, "Memory Write").
pub fn illegal_write() -> Workload {
    let source = format!(
        "{prologue}
    user_entry:
        {warm}
        ; ---------------- the attack ----------------
        li   r10, {secret_addr}
        li   r11, {attack_value}
        sw   r11, 0(r10)      ; illegal write: caught at T_t in the golden run
        li   r2, 0
        li   r4, 8
    post:
        addi r2, r2, 1
        bne  r2, r4, post
        {epilogue}",
        prologue = prologue(),
        warm = warmup(24),
        secret_addr = SECRET_ADDR,
        attack_value = ATTACK_VALUE,
        epilogue = EPILOGUE,
    );
    Workload {
        name: "memory_write",
        description: "user-mode process attempts an illegal write to protected memory",
        program: assemble(&source).expect("workload must assemble").words,
        goal: AttackGoal::IllegalWrite,
    }
}

/// The illegal-memory-read benchmark (paper §6, "Memory Read").
pub fn illegal_read() -> Workload {
    let source = format!(
        "{prologue}
    user_entry:
        {warm}
        ; ---------------- the attack ----------------
        li   r10, {secret_addr}
        lw   r11, 0(r10)      ; illegal read: blocked (returns 0) in golden
        sw   r11, {leak_addr}(r0) ; exfiltrate into the user buffer
        li   r2, 0
        li   r4, 8
    post:
        addi r2, r2, 1
        bne  r2, r4, post
        {epilogue}",
        prologue = prologue(),
        warm = warmup(20),
        secret_addr = SECRET_ADDR,
        leak_addr = LEAK_ADDR,
        epilogue = EPILOGUE,
    );
    Workload {
        name: "memory_read",
        description: "user-mode process attempts to read and exfiltrate a protected secret",
        program: assemble(&source).expect("workload must assemble").words,
        goal: AttackGoal::IllegalRead,
    }
}

/// The DMA-exfiltration benchmark: the peripheral path of the paper's
/// Figure 1.
///
/// The user-mode process cannot read the secret itself, so it programs the
/// DMA engine to copy it into the user buffer. The DMA is an untrusted bus
/// master: its read of the protected word is checked by the MPU exactly
/// like a core access, the violation traps the (user-mode) core, and the
/// handler isolates the process. The attack goal is the same as the read
/// scenario's: the secret value present at [`LEAK_ADDR`] with no isolation.
pub fn dma_exfiltration() -> Workload {
    // Region 2 deliberately grants user access to the DMA register window:
    // the system designer lets user processes use the DMA engine and relies
    // on the MPU to police the engine's *own* memory traffic — the exact
    // peripheral-check scenario of the paper's Figure 1.
    let extra = "
        li   r2, 0x8000
        sw   r2, 24(r1)       ; region2.base  = DMA registers
        li   r2, 0x800f
        sw   r2, 28(r1)       ; region2.limit
        li   r2, 0xb
        sw   r2, 32(r1)       ; region2.perms = RW|USER
    ";
    let source = format!(
        "{prologue}
    user_entry:
        {warm}
        ; ---------------- the attack ----------------
        li   r3, 0x8000
        li   r4, {secret_addr}
        sw   r4, 0(r3)        ; DMA.src = the protected secret
        li   r4, {leak_addr}
        sw   r4, 4(r3)        ; DMA.dst = the user leak buffer
        li   r4, 1
        sw   r4, 8(r3)        ; DMA.len = 1 word
        li   r4, 1
        sw   r4, 12(r3)       ; start: the DMA (an untrusted master) reads
                              ; the secret; the MPU checks that access
    spin:
        lw   r5, 12(r3)       ; poll DMA busy (legal via region 2)
        bne  r5, r0, spin
        {epilogue}",
        prologue = prologue_with(extra),
        warm = warmup(20),
        secret_addr = SECRET_ADDR,
        leak_addr = LEAK_ADDR,
        epilogue = EPILOGUE,
    );
    Workload {
        name: "dma_exfiltration",
        description: "user-mode process programs the DMA engine to exfiltrate the secret",
        program: assemble(&source).expect("workload must assemble").words,
        goal: AttackGoal::IllegalRead,
    }
}

/// The trap-handler privilege-escalation benchmark.
///
/// The privileged prologue handles the secret and sloppily leaves it in
/// `r15` when dropping to user mode. The trap handler classifies MPU faults
/// by their trap PC: faults inside the window of the program's one
/// *deliberate* probe are the expected violation and isolate the process;
/// faults anywhere else "cannot happen", so the handler takes a diagnostic
/// path that dumps register state — including the privileged residue — into
/// user-readable memory and skips isolation. A fault attack that corrupts
/// the MPU configuration makes *legal* warm-up traffic violate, the trap
/// fires outside the expected window, and the corrupted-state handler leaks
/// the secret: privilege escalation via corrupted trap-handler state.
pub fn trap_escalation() -> Workload {
    let extra = "
        lw   r15, 0(r3)       ; privileged residue: secret left in a register
    ";
    let source = format!(
        "{prologue}
    user_entry:
        {warm}
        ; ---------------- the attack ----------------
        li   r10, 0xdead
    probe_lo:
        sw   r10, 0x6000(r0)  ; deliberate illegal write: anchors T_t
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
    probe_hi:
        ecall                 ; normal end of the user program
    handler:
        csrrw r12, cause, r0
        li   r13, 2
        beq  r12, r13, done   ; ecall path: clean termination
        csrrw r14, epc, r0    ; MPU fault: where did it fire?
        li   r13, probe_lo
        bltu r14, r13, diag   ; before the probe window: unexpected
        li   r13, probe_hi
        bltu r14, r13, expected
    diag:
        sw   r15, {dump_addr}(r0) ; diagnostic dump leaks the residue
        nop                   ; drain the MPU pipeline before freezing
        nop
        halt
    expected:
        li   r13, 1
        csrrw r0, isolated, r13
        halt                  ; security response: process isolated
    done:
        halt
        ",
        prologue = prologue_with(extra),
        warm = warmup(24),
        dump_addr = DUMP_ADDR,
    );
    Workload {
        name: "trap_escalation",
        description: "spurious MPU fault drives the trap handler's diagnostic path, \
                      leaking privileged register residue",
        program: assemble(&source).expect("workload must assemble").words,
        goal: AttackGoal::PrivilegeEscalation,
    }
}

/// The instruction-skip benchmark.
///
/// The user program arms a guard word, performs one deliberate illegal
/// probe (anchoring `T_t`; the fault-tolerant handler resumes past it),
/// re-reads the guard and only falls through to a privileged-tail leak
/// store when the guard is *not* armed. A fault that corrupts the MPU
/// configuration (e.g. shrinks region 0 below the guard address while
/// leaving the leak buffer accessible) silently blocks the arming store —
/// the classic instruction-skip effect — and the fall-through leak
/// executes.
pub fn instruction_skip() -> Workload {
    let source = format!(
        "{prologue}
    user_entry:
        {warm}
        ; ---------------- the critical sequence ----------------
        li   r3, 1
        sw   r3, {guard_addr}(r0) ; arm the guard: proves the check ran
        sw   r3, 0x6000(r0)   ; deliberate illegal write: anchors T_t
        nop
        nop
        nop
        nop
        li   r4, 0
        lw   r4, {guard_addr}(r0) ; re-read (a blocked load leaves 0)
        bne  r4, r0, safe     ; guard armed: skip the leaking tail
        li   r5, {attack_value}
        sw   r5, {leak_addr}(r0)  ; reachable only if the arm was skipped
    safe:
        ecall
    handler:
        csrrw r12, cause, r0
        li   r13, 1
        beq  r12, r13, tolerate
        halt                  ; ecall path: clean termination
    tolerate:
        mret                  ; fault-tolerant policy: resume past the fault
        ",
        prologue = prologue(),
        warm = warmup(20),
        guard_addr = GUARD_ADDR,
        attack_value = ATTACK_VALUE,
        leak_addr = LEAK_ADDR,
    );
    Workload {
        name: "instruction_skip",
        description: "fault-skipped guard store lets the fall-through leak execute",
        program: assemble(&source).expect("workload must assemble").words,
        goal: AttackGoal::InstructionSkip,
    }
}

/// One user-phase address sweep: legal stores/loads across the user buffer
/// plus sporadic illegal pokes at the protected area.
fn sweep_phase(label: &str, iters: u32) -> String {
    format!(
        "
    {label}:
        li   r13, {user_buf}
        li   r15, {secret_addr}
        li   r2, 0
        li   r4, {iters}
        li   r12, 4
    {label}_loop:
        addi r2, r2, 1
        sll  r8, r2, r12
        andi r8, r8, 0x7f0    ; sweep address bits 4..10
        add  r9, r8, r13
        sw   r2, 0(r9)
        lw   r10, 0(r9)
        andi r11, r2, 7
        bne  r11, r0, {label}_skip
        add  r14, r8, r15
        sw   r2, 0(r14)       ; sporadic illegal poke (blocked, survivable)
    {label}_skip:
        bne  r2, r4, {label}_loop
        ecall                 ; hand control back for reconfiguration
        ",
        user_buf = USER_BUF,
        secret_addr = SECRET_ADDR,
    )
}

/// The synthetic pre-characterization stimulus.
///
/// Three user phases of address-sweeping traffic with sporadic (survivable)
/// violations, separated by privileged **reconfiguration** of the MPU —
/// phase 2 shrinks region 0 so the sweep itself violates (a violation
/// storm), phase 3 disables the MPU (quiet). The reconfigurations make the
/// *configuration registers themselves switch*, giving the
/// pre-characterization correlation signal for the persistent state, not
/// just the pipeline. A DMA transfer whose destination straddles a
/// read-only region exercises the peripheral path too. The trap handler
/// resumes on MPU faults instead of isolating so the run keeps producing
/// activity.
pub fn synthetic_precharacterization() -> Workload {
    let source = format!(
        "
        ; configuration A: region0 user RWX [0, 0x5fff], region1 user R
        li   r1, 0x8100
        li   r2, 0x0000
        sw   r2, 0(r1)
        li   r2, 0x5fff
        sw   r2, 4(r1)
        li   r2, 0xf
        sw   r2, 8(r1)
        li   r2, 0x6000
        sw   r2, 12(r1)
        li   r2, 0x60ff
        sw   r2, 16(r1)
        li   r2, 0x9
        sw   r2, 20(r1)
        li   r2, 1
        sw   r2, 0x30(r1)
        li   r5, handler
        csrrw r0, tvec, r5
        ; DMA: copy 8 words from 0x4000 to 0x60f0 (writes past 0x60ff and
        ; into the read-only region are blocked -> peripheral violations)
        li   r3, 0x8000
        li   r4, 0x4000
        sw   r4, 0(r3)
        li   r4, 0x60f0
        sw   r4, 4(r3)
        li   r4, 8
        sw   r4, 8(r3)
        li   r4, 1
        sw   r4, 12(r3)
        li   r6, phase1
        csrrw r0, epc, r6
        mret
    {phase1}
    {phase2}
    {phase3}
    handler:
        csrrw r12, cause, r0
        li   r13, 2
        beq  r12, r13, ecall_path
        mret                  ; MPU fault: survive and continue
    ecall_path:
        csrrw r14, scratch, r0
        beq  r14, r0, reconfig_b
        li   r13, 1
        beq  r14, r13, reconfig_c
        halt                  ; third ecall: done
    reconfig_b:
        ; configuration B: shrink region0 so the sweep violates, open
        ; region1 for writes
        li   r1, 0x8100
        li   r2, 0x3fff
        sw   r2, 4(r1)
        li   r2, 0xf
        sw   r2, 20(r1)
        li   r2, 1
        csrrw r0, scratch, r2
        li   r2, phase2
        csrrw r0, epc, r2
        mret
    reconfig_c:
        ; configuration C: restore region0, disable the MPU (quiet phase)
        li   r1, 0x8100
        li   r2, 0x5fff
        sw   r2, 4(r1)
        li   r2, 0
        sw   r2, 0x30(r1)
        li   r2, 2
        csrrw r0, scratch, r2
        li   r2, phase3
        csrrw r0, epc, r2
        mret
        ",
        phase1 = sweep_phase("phase1", 16),
        phase2 = sweep_phase("phase2", 14),
        phase3 = sweep_phase("phase3", 12),
    );
    Workload {
        name: "precharacterization",
        description: "synthetic stimulus with reconfiguration phases and mixed core/DMA traffic",
        program: assemble(&source).expect("workload must assemble").words,
        // Not an attack scenario; the goal is unused but IllegalWrite keeps
        // the type simple.
        goal: AttackGoal::IllegalWrite,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golden::GoldenRun;

    #[test]
    fn write_workload_golden_run_catches_the_attack() {
        let w = illegal_write();
        let run = GoldenRun::record(&w.program, 5_000, 32);
        assert!(run.final_soc.halted(), "must reach halt");
        let tt = run.first_violation_cycle().expect("violation expected");
        assert!(tt > 100, "warm-up must precede the attack (T_t = {tt})");
        assert_eq!(run.final_soc.core.isolated, 1);
        assert_eq!(run.final_soc.mem_word(SECRET_ADDR), SECRET_VALUE);
        assert!(
            !w.goal.succeeded(&run.final_soc),
            "the golden run is a failed attack"
        );
    }

    #[test]
    fn read_workload_golden_run_catches_the_attack() {
        let w = illegal_read();
        let run = GoldenRun::record(&w.program, 5_000, 32);
        assert!(run.final_soc.halted());
        assert!(run.first_violation_cycle().is_some());
        assert_eq!(run.final_soc.core.isolated, 1);
        assert_ne!(run.final_soc.mem_word(LEAK_ADDR), SECRET_VALUE);
        assert!(!w.goal.succeeded(&run.final_soc));
    }

    #[test]
    fn write_goal_detects_success() {
        let w = illegal_write();
        let run = GoldenRun::record(&w.program, 5_000, 32);
        // Forge a successful outcome to validate the predicate.
        let mut forged = run.final_soc.clone();
        forged.set_mem_word(SECRET_ADDR, ATTACK_VALUE);
        forged.core.isolated = 0;
        assert!(w.goal.succeeded(&forged));
        forged.core.isolated = 1;
        assert!(!w.goal.succeeded(&forged), "isolation defeats the attack");
    }

    #[test]
    fn read_goal_detects_success() {
        let w = illegal_read();
        let run = GoldenRun::record(&w.program, 5_000, 32);
        let mut forged = run.final_soc.clone();
        forged.set_mem_word(LEAK_ADDR, SECRET_VALUE);
        forged.core.isolated = 0;
        assert!(w.goal.succeeded(&forged));
    }

    #[test]
    fn precharacterization_run_has_rich_activity() {
        let w = synthetic_precharacterization();
        let run = GoldenRun::record(&w.program, 20_000, 64);
        assert!(run.final_soc.halted(), "must terminate");
        // Both masters must have produced traffic, including violations.
        assert!(run.violation_cycles.len() >= 5, "want repeated violations");
        let dma_accesses = run
            .access_trace
            .iter()
            .filter(|a| a.master == crate::soc::Master::Dma)
            .count();
        assert!(
            dma_accesses >= 8,
            "DMA traffic expected, got {dma_accesses}"
        );
        let blocked_dma = run
            .access_trace
            .iter()
            .filter(|a| a.master == crate::soc::Master::Dma && !a.allowed)
            .count();
        assert!(blocked_dma > 0, "some DMA writes must be blocked");
        // The core survived its violations (handler resumes).
        assert!(run.cycles > 200);
    }

    #[test]
    fn dma_workload_golden_run_catches_the_peripheral_attack() {
        let w = dma_exfiltration();
        let run = GoldenRun::record(&w.program, 5_000, 32);
        assert!(run.final_soc.halted(), "must reach halt");
        let tt = run.first_violation_cycle().expect("violation expected");
        assert!(tt > 100, "warm-up must precede the attack (T_t = {tt})");
        // The violating access comes from the DMA master, not the core.
        let blocked: Vec<_> = run.access_trace.iter().filter(|a| !a.allowed).collect();
        assert_eq!(blocked.len(), 1);
        assert_eq!(blocked[0].master, crate::soc::Master::Dma);
        assert_eq!(blocked[0].req.addr, SECRET_ADDR);
        assert_eq!(run.final_soc.core.isolated, 1);
        assert_ne!(run.final_soc.mem_word(LEAK_ADDR), SECRET_VALUE);
        assert!(!w.goal.succeeded(&run.final_soc));
    }

    #[test]
    fn dma_attack_succeeds_when_the_responding_signal_is_suppressed() {
        // Disable the MPU mid-run: the DMA read passes and the secret lands
        // in the user buffer with no isolation.
        let w = dma_exfiltration();
        let run = GoldenRun::record(&w.program, 5_000, 32);
        let tt = run.first_violation_cycle().unwrap();
        let te = tt - 5;
        let mut soc = run.nearest_checkpoint(te).clone();
        while soc.cycle < te {
            soc.step();
        }
        soc.step();
        soc.mpu.config.enable = false; // injected fault
        soc.run_until_halt(run.cycles + 500);
        assert_eq!(soc.mem_word(LEAK_ADDR), SECRET_VALUE);
        assert_eq!(soc.core.isolated, 0);
        assert!(w.goal.succeeded(&soc));
    }

    #[test]
    fn trap_escalation_golden_run_isolates_the_probe() {
        let w = trap_escalation();
        let run = GoldenRun::record(&w.program, 5_000, 32);
        assert!(run.final_soc.halted(), "must reach halt");
        let tt = run.first_violation_cycle().expect("violation expected");
        assert!(tt > 100, "warm-up must precede the attack (T_t = {tt})");
        // The deliberate probe traps inside the expected window: the
        // handler isolates instead of taking the diagnostic path.
        assert_eq!(run.final_soc.core.isolated, 1);
        assert_ne!(run.final_soc.mem_word(DUMP_ADDR), SECRET_VALUE);
        assert!(!w.goal.succeeded(&run.final_soc));
    }

    #[test]
    fn trap_escalation_goal_detects_success() {
        let w = trap_escalation();
        let run = GoldenRun::record(&w.program, 5_000, 32);
        let mut forged = run.final_soc.clone();
        forged.set_mem_word(DUMP_ADDR, SECRET_VALUE);
        forged.core.isolated = 0;
        assert!(w.goal.succeeded(&forged));
        forged.core.isolated = 1;
        assert!(!w.goal.succeeded(&forged), "isolation defeats the attack");
    }

    #[test]
    fn trap_escalation_succeeds_on_a_spurious_violation() {
        // Corrupt the MPU configuration during the warm-up: legal user
        // traffic now violates, the trap fires outside the probe window and
        // the handler's diagnostic path leaks the privileged residue.
        let w = trap_escalation();
        let run = GoldenRun::record(&w.program, 5_000, 32);
        let tt = run.first_violation_cycle().unwrap();
        let te = tt - 60; // still inside the warm-up loop
        let mut soc = run.nearest_checkpoint(te).clone();
        while soc.cycle < te {
            soc.step();
        }
        soc.step();
        soc.mpu.config.regions[0].limit = 0x3fff; // injected fault
        soc.run_until_halt(run.cycles + 500);
        assert_eq!(soc.mem_word(DUMP_ADDR), SECRET_VALUE);
        assert_eq!(soc.core.isolated, 0);
        assert!(w.goal.succeeded(&soc));
    }

    #[test]
    fn instruction_skip_golden_run_arms_the_guard() {
        let w = instruction_skip();
        let run = GoldenRun::record(&w.program, 5_000, 32);
        assert!(run.final_soc.halted(), "must reach halt");
        let tt = run.first_violation_cycle().expect("violation expected");
        assert!(tt > 100, "warm-up must precede the attack (T_t = {tt})");
        assert_eq!(run.final_soc.mem_word(GUARD_ADDR), 1, "guard armed");
        assert_ne!(run.final_soc.mem_word(LEAK_ADDR), ATTACK_VALUE);
        assert!(!w.goal.succeeded(&run.final_soc));
    }

    #[test]
    fn instruction_skip_goal_detects_success() {
        let w = instruction_skip();
        let run = GoldenRun::record(&w.program, 5_000, 32);
        let mut forged = run.final_soc.clone();
        forged.set_mem_word(GUARD_ADDR, 0);
        forged.set_mem_word(LEAK_ADDR, ATTACK_VALUE);
        forged.core.isolated = 0;
        assert!(w.goal.succeeded(&forged));
        forged.set_mem_word(GUARD_ADDR, 1);
        assert!(
            !w.goal.succeeded(&forged),
            "an armed guard defeats the skip"
        );
    }

    #[test]
    fn instruction_skip_succeeds_when_the_guard_store_is_blocked() {
        // Shrink region 0 below the guard address (but above the leak
        // buffer) just before the critical sequence: the arming store is
        // silently skipped and the fall-through leak executes.
        let w = instruction_skip();
        let run = GoldenRun::record(&w.program, 5_000, 32);
        let tt = run.first_violation_cycle().unwrap();
        let te = tt - 8;
        let mut soc = run.nearest_checkpoint(te).clone();
        while soc.cycle < te {
            soc.step();
        }
        soc.step();
        soc.mpu.config.regions[0].limit = 0x4fff; // injected fault
        soc.run_until_halt(run.cycles + 500);
        assert_eq!(soc.mem_word(GUARD_ADDR), 0, "arming store was blocked");
        assert_eq!(soc.mem_word(LEAK_ADDR), ATTACK_VALUE);
        assert_eq!(soc.core.isolated, 0);
        assert!(w.goal.succeeded(&soc));
    }

    #[test]
    fn write_and_read_goals_require_no_isolation() {
        let w = illegal_write();
        let run = GoldenRun::record(&w.program, 5_000, 32);
        let mut forged = run.final_soc.clone();
        forged.set_mem_word(SECRET_ADDR, ATTACK_VALUE);
        forged.set_mem_word(LEAK_ADDR, SECRET_VALUE);
        forged.core.isolated = 1;
        assert!(!AttackGoal::IllegalWrite.succeeded(&forged));
        assert!(!AttackGoal::IllegalRead.succeeded(&forged));
        forged.core.isolated = 0;
        assert!(AttackGoal::IllegalWrite.succeeded(&forged));
        assert!(AttackGoal::IllegalRead.succeeded(&forged));
    }

    #[test]
    fn attack_cycle_is_stable_across_recordings() {
        let w = illegal_write();
        let a = GoldenRun::record(&w.program, 5_000, 32);
        let b = GoldenRun::record(&w.program, 5_000, 32);
        assert_eq!(a.first_violation_cycle(), b.first_violation_cycle());
        assert_eq!(a.cycles, b.cycles);
    }
}
