//! The RTL-level golden run: checkpoints, traces and per-cycle MPU stimulus.
//!
//! Paper §5.1: "Before the fault attack run, a complete run of the benchmark
//! is performed, termed as the golden run. During the golden run, golden
//! checkpoints are dumped at intermediate points." The golden run also
//! records everything the pre-characterization and the fault-attack runs
//! need to replay any cycle:
//!
//! * full-system checkpoints every `interval` cycles (restart points),
//! * the MPU register state at the start of every cycle,
//! * the request/config-write stimulus the MPU saw in every cycle (the
//!   gate-level netlist's primary-input values for that cycle),
//! * the resolved data-access trace (for the analytical evaluation), and
//! * the cycles where the combinational violation fired.

use crate::mpu::{AccessReq, CfgWrite, MpuState};
use crate::soc::{AccessRecord, Soc};
use serde::{Deserialize, Serialize};

/// Per-cycle stimulus seen by the MPU (drives the gate-level netlist).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CycleStimulus {
    /// The request issued this cycle (latched into the MPU pipeline at the
    /// end of the cycle).
    pub request: Option<AccessReq>,
    /// The configuration write committed this cycle.
    pub cfg_write: Option<CfgWrite>,
    /// Whether the combinational violation signal fired this cycle.
    pub viol_comb: bool,
}

/// The recorded golden run of one benchmark.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GoldenRun {
    /// Cycles between checkpoints.
    pub interval: u64,
    /// Checkpoints: `checkpoints[k]` is the state *at the start of* cycle
    /// `k * interval`.
    pub checkpoints: Vec<Soc>,
    /// The MPU register state at the start of every cycle.
    pub mpu_states: Vec<MpuState>,
    /// [`Soc::arch_fingerprint`] at the start of every cycle — the
    /// comparison track for the campaign's golden-reconvergence early exit
    /// (a faulty resume whose fingerprint matches is a candidate for having
    /// re-joined the golden trajectory; RAM divergence is caught by the
    /// mandatory exact state compare).
    pub fingerprints: Vec<u64>,
    /// Per-cycle MPU stimulus.
    pub stimulus: Vec<CycleStimulus>,
    /// Every resolved data access.
    pub access_trace: Vec<AccessRecord>,
    /// Cycles where the combinational violation fired.
    pub violation_cycles: Vec<u64>,
    /// Cycles where the core entered the trap handler.
    pub trap_cycles: Vec<u64>,
    /// The system state after the run ended.
    pub final_soc: Soc,
    /// Number of cycles executed (halt or the cap).
    pub cycles: u64,
}

impl GoldenRun {
    /// Record the golden run of `program` (capped at `max_cycles`),
    /// checkpointing every `interval` cycles.
    ///
    /// # Panics
    ///
    /// Panics when `interval` is zero or the program does not fit in RAM.
    pub fn record(program: &[u32], max_cycles: u64, interval: u64) -> Self {
        assert!(interval > 0, "checkpoint interval must be positive");
        let mut soc = Soc::new(program);
        let mut run = GoldenRun {
            interval,
            checkpoints: Vec::new(),
            mpu_states: Vec::new(),
            fingerprints: Vec::new(),
            stimulus: Vec::new(),
            access_trace: Vec::new(),
            violation_cycles: Vec::new(),
            trap_cycles: Vec::new(),
            final_soc: soc.clone(),
            cycles: 0,
        };
        while !soc.halted() && soc.cycle < max_cycles {
            if soc.cycle.is_multiple_of(interval) {
                run.checkpoints.push(soc.clone());
            }
            run.mpu_states.push(soc.mpu);
            run.fingerprints.push(soc.arch_fingerprint());
            let cycle = soc.cycle;
            let ev = soc.step();
            run.stimulus.push(CycleStimulus {
                request: ev.issued.map(|(_, r)| r),
                cfg_write: ev.cfg_write,
                viol_comb: ev.viol_comb,
            });
            if let Some(rec) = ev.resolved {
                run.access_trace.push(rec);
            }
            if ev.viol_comb {
                run.violation_cycles.push(cycle);
            }
            if ev.trapped {
                run.trap_cycles.push(cycle);
            }
        }
        run.cycles = soc.cycle;
        run.final_soc = soc;
        run
    }

    /// The latest checkpoint at or before `cycle`, for fault-run restart.
    ///
    /// # Panics
    ///
    /// Panics when no checkpoint exists (empty run).
    pub fn nearest_checkpoint(&self, cycle: u64) -> &Soc {
        let idx = (cycle / self.interval) as usize;
        let idx = idx.min(self.checkpoints.len().saturating_sub(1));
        &self.checkpoints[idx]
    }

    /// The first cycle where the combinational violation fired — for the
    /// attack workloads this is the target cycle `T_t` where the security
    /// mechanism catches the malicious operation.
    pub fn first_violation_cycle(&self) -> Option<u64> {
        self.violation_cycles.first().copied()
    }

    /// Whether the given cycle index was recorded.
    pub fn has_cycle(&self, cycle: u64) -> bool {
        cycle < self.cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn golden(src: &str) -> GoldenRun {
        GoldenRun::record(&assemble(src).unwrap().words, 5_000, 16)
    }

    #[test]
    fn records_cycles_and_checkpoints() {
        let run = golden(
            "
            li r1, 50
            li r2, 0
        loop:
            addi r2, r2, 1
            bne r2, r1, loop
            halt
            ",
        );
        assert!(run.cycles > 100);
        assert_eq!(run.mpu_states.len() as u64, run.cycles);
        assert_eq!(run.fingerprints.len() as u64, run.cycles);
        assert_eq!(run.stimulus.len() as u64, run.cycles);
        assert_eq!(run.checkpoints.len() as u64, run.cycles.div_ceil(16));
        assert!(run.final_soc.halted());
    }

    #[test]
    fn nearest_checkpoint_is_at_or_before() {
        let run = golden(
            "
            li r1, 100
            li r2, 0
        loop:
            addi r2, r2, 1
            bne r2, r1, loop
            halt
            ",
        );
        for cycle in [0u64, 1, 15, 16, 17, 100] {
            let ck = run.nearest_checkpoint(cycle);
            assert!(ck.cycle <= cycle);
            assert!(cycle - ck.cycle < 2 * run.interval);
        }
    }

    #[test]
    fn replay_from_checkpoint_matches_golden_tail() {
        let src = "
            li r1, 60
            li r2, 0
        loop:
            addi r2, r2, 1
            sw r2, 0x4000(r0)
            bne r2, r1, loop
            halt
            ";
        let run = golden(src);
        let mut replay = run.nearest_checkpoint(40).clone();
        while !replay.halted() {
            assert_eq!(
                replay.arch_fingerprint(),
                run.fingerprints[replay.cycle as usize],
                "fingerprint track must match a faithful replay at cycle {}",
                replay.cycle
            );
            replay.step();
        }
        assert_eq!(replay, run.final_soc);
    }

    #[test]
    fn violation_cycle_recorded_for_illegal_access() {
        let run = golden(
            "
            li r1, 0x8100
            li r2, 0
            sw r2, 0(r1)
            li r2, 0x5fff
            sw r2, 4(r1)
            li r2, 0xf
            sw r2, 8(r1)
            li r2, 1
            sw r2, 0x30(r1)
            li r3, handler
            csrrw r0, tvec, r3
            li r4, user
            csrrw r0, epc, r4
            mret
        user:
            li r5, 0x7000
            sw r0, 0(r5)
            nop
            nop
            nop
            halt
        handler:
            li r7, 1
            csrrw r0, isolated, r7
            halt
            ",
        );
        let tt = run.first_violation_cycle().expect("violation must fire");
        assert!(run.trap_cycles.iter().any(|&c| c == tt + 1));
        assert!(!run.access_trace.is_empty());
        let blocked: Vec<_> = run.access_trace.iter().filter(|a| !a.allowed).collect();
        assert_eq!(blocked.len(), 1);
        assert_eq!(blocked[0].req.addr, 0x7000);
    }

    #[test]
    fn mpu_state_trace_is_consistent_with_stimulus() {
        // Replaying the recorded stimulus through a fresh MpuState must
        // reproduce the recorded per-cycle MPU states.
        let run = golden(
            "
            li r1, 0x8100
            li r2, 0x1234
            sw r2, 0(r1)
            li r2, 20
            li r3, 0
        loop:
            addi r3, r3, 1
            sw r3, 0x4000(r0)
            bne r3, r2, loop
            halt
            ",
        );
        let mut mpu = MpuState::default();
        for c in 0..run.cycles as usize {
            assert_eq!(mpu, run.mpu_states[c], "cycle {c}");
            assert_eq!(mpu.viol_comb(), run.stimulus[c].viol_comb, "cycle {c}");
            mpu.step(run.stimulus[c].request, run.stimulus[c].cfg_write);
        }
    }
}
