//! Gate-level elaboration of the MPU.
//!
//! This is the "synthesized netlist" the cross-level flow switches to during
//! the fault-injection cycle. The elaboration instantiates the same
//! microarchitecture as the functional [`crate::mpu`] model — pipeline
//! registers, per-region magnitude comparators and permission decoders, an
//! OR reduction to the combinational violation net, the registered
//! `access_violation` responding signal and the sticky status bank — out of
//! plain standard cells, and names every flip-flop after the architectural
//! bit it holds ([`crate::mpu::MpuBit::dff_name`]). That naming is the
//! cross-level register map: gate-level latched errors translate directly
//! into RTL state mutations and vice versa.
//!
//! The equivalence test module cross-checks the elaboration against the
//! functional model cycle-by-cycle on random stimulus.

use crate::mpu::{AccessReq, CfgWrite, MpuBit, MpuState, ADDR_BITS, CFG_ENABLE_INDEX, NUM_REGIONS};
use std::collections::HashMap;
use xlmc_netlist::{BusBuilder, CellKind, GateId, Netlist};

/// The elaborated MPU: netlist plus the cross-level register map.
#[derive(Debug, Clone)]
pub struct MpuNetlist {
    netlist: Netlist,
    dff_for_bit: HashMap<MpuBit, GateId>,
    bit_for_dff: HashMap<GateId, MpuBit>,
    viol_comb: GateId,
    violation_q: GateId,
}

impl MpuNetlist {
    /// Elaborate the MPU into a gate netlist.
    ///
    /// # Panics
    ///
    /// Panics if the construction produces an invalid netlist — that would
    /// be a bug in the elaboration, not a user error.
    pub fn new() -> Self {
        let mut n = Netlist::new();
        let mut b = BusBuilder::new(&mut n);

        // Primary inputs, in the order `input_values` reproduces.
        let req_addr = b.input_bus("req_addr", ADDR_BITS);
        let req_kind = b.input_bus("req_kind", 2);
        let req_user = b.netlist().add_input("req_user");
        let req_valid = b.netlist().add_input("req_valid");
        let cfg_wen = b.netlist().add_input("cfg_wen");
        let cfg_index = b.input_bus("cfg_index", 4);
        let cfg_wdata = b.input_bus("cfg_wdata", ADDR_BITS);

        // Request pipeline registers (computation-type).
        let pipe_addr = b.dff_bus("pipe_addr", &req_addr);
        let pipe_kind = b.dff_bus("pipe_kind", &req_kind);
        let pipe_user = b.netlist().add_dff("pipe_user", req_user);
        let pipe_valid = b.netlist().add_dff("pipe_valid", req_valid);

        // Configuration registers with decoded write enables (memory-type).
        let mut bases = Vec::with_capacity(NUM_REGIONS);
        let mut limits = Vec::with_capacity(NUM_REGIONS);
        let mut perms = Vec::with_capacity(NUM_REGIONS);
        for r in 0..NUM_REGIONS {
            let sel_base = {
                let idx = b.const_bus((r * 3) as u64, 4);
                let eq = b.eq(&cfg_index, &idx);
                b.netlist().add_gate(CellKind::And, &[eq, cfg_wen])
            };
            bases.push(b.dff_bus_en(&format!("cfg_base{r}"), &cfg_wdata, sel_base));
            let sel_limit = {
                let idx = b.const_bus((r * 3 + 1) as u64, 4);
                let eq = b.eq(&cfg_index, &idx);
                b.netlist().add_gate(CellKind::And, &[eq, cfg_wen])
            };
            limits.push(b.dff_bus_en(&format!("cfg_limit{r}"), &cfg_wdata, sel_limit));
            let sel_perms = {
                let idx = b.const_bus((r * 3 + 2) as u64, 4);
                let eq = b.eq(&cfg_index, &idx);
                b.netlist().add_gate(CellKind::And, &[eq, cfg_wen])
            };
            perms.push(b.dff_bus_en(&format!("cfg_perms{r}"), &cfg_wdata[..4], sel_perms));
        }
        let enable = {
            let idx = b.const_bus(u64::from(CFG_ENABLE_INDEX), 4);
            let eq = b.eq(&cfg_index, &idx);
            let sel = b.netlist().add_gate(CellKind::And, &[eq, cfg_wen]);
            b.dff_bus_en("cfg_enable", &cfg_wdata[..1], sel)[0]
        };

        // Per-region check: in-range, kind permission, user permission.
        let k0 = pipe_kind[0];
        let k1 = pipe_kind[1];
        let nk0 = b.netlist().add_gate(CellKind::Not, &[k0]);
        let nk1 = b.netlist().add_gate(CellKind::Not, &[k1]);
        let is_read = b.netlist().add_gate(CellKind::And, &[nk1, nk0]);
        let is_write = b.netlist().add_gate(CellKind::And, &[nk1, k0]);
        let is_exec = b.netlist().add_gate(CellKind::And, &[k1, nk0]);
        let mut region_allows = Vec::with_capacity(NUM_REGIONS);
        for r in 0..NUM_REGIONS {
            let ge = b.uge(&pipe_addr, &bases[r]);
            let le = b.ule(&pipe_addr, &limits[r]);
            let in_range = b.netlist().add_gate(CellKind::And, &[ge, le]);
            let rd_ok = b.netlist().add_gate(CellKind::And, &[is_read, perms[r][0]]);
            let wr_ok = b
                .netlist()
                .add_gate(CellKind::And, &[is_write, perms[r][1]]);
            let ex_ok = b.netlist().add_gate(CellKind::And, &[is_exec, perms[r][2]]);
            let kind_ok = b.or_reduce(&[rd_ok, wr_ok, ex_ok]);
            let allow = b.and_reduce(&[in_range, kind_ok, perms[r][3]]);
            region_allows.push(allow);
        }
        let any_allow = b.or_reduce(&region_allows);
        let no_allow = b.netlist().add_gate(CellKind::Not, &[any_allow]);
        let viol_comb = {
            let v = b.and_reduce(&[pipe_valid, pipe_user, enable, no_allow]);
            b.netlist()
                .add_named_gate("access_violation_comb", CellKind::Buf, &[v])
        };

        // Responding-signal register and sticky status bank.
        let violation_q = b.netlist().add_dff("access_violation_q", viol_comb);
        let sticky_viol = {
            // sticky.D = sticky.Q | violation.Q (forward self-reference).
            let placeholder = b.netlist().add_const(false);
            let q = b.netlist().add_dff("sticky_viol", placeholder);
            let d = b.netlist().add_gate(CellKind::Or, &[q, violation_q]);
            b.netlist().set_fanin(q, vec![d]);
            q
        };
        let _ = sticky_viol;
        b.dff_bus_en("sticky_addr", &pipe_addr, viol_comb);
        b.dff_bus_en("sticky_kind", &pipe_kind, viol_comb);

        b.netlist().add_output("access_violation", violation_q);

        n.validate()
            .expect("MPU elaboration produced an invalid netlist");

        let mut dff_for_bit = HashMap::new();
        let mut bit_for_dff = HashMap::new();
        for bit in MpuBit::all() {
            let id = n
                .resolve(&bit.dff_name())
                .expect("elaboration must name every architectural bit");
            dff_for_bit.insert(bit, id);
            bit_for_dff.insert(id, bit);
        }
        debug_assert_eq!(dff_for_bit.len(), n.dffs().len());

        Self {
            netlist: n,
            dff_for_bit,
            bit_for_dff,
            viol_comb,
            violation_q,
        }
    }

    /// The gate netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The combinational violation net — the responding signal the
    /// pre-characterization traces cones from.
    pub fn responding_signal(&self) -> GateId {
        self.viol_comb
    }

    /// The registered `access_violation` output.
    pub fn violation_register(&self) -> GateId {
        self.violation_q
    }

    /// The DFF holding an architectural bit.
    ///
    /// # Panics
    ///
    /// Panics for bits not in the map (cannot happen for [`MpuBit::all`]).
    pub fn dff(&self, bit: MpuBit) -> GateId {
        self.dff_for_bit[&bit]
    }

    /// The architectural bit a DFF holds, `None` for non-DFF gates.
    pub fn bit_of(&self, dff: GateId) -> Option<MpuBit> {
        self.bit_for_dff.get(&dff).copied()
    }

    /// Express an [`MpuState`] as a netlist state vector in
    /// [`Netlist::dffs`] order.
    pub fn state_vector(&self, state: &MpuState) -> Vec<bool> {
        let mut v = Vec::new();
        self.state_vector_into(state, &mut v);
        v
    }

    /// [`MpuNetlist::state_vector`] into a caller-owned buffer (cleared
    /// first).
    pub fn state_vector_into(&self, state: &MpuState, out: &mut Vec<bool>) {
        out.clear();
        out.extend(
            self.netlist
                .dffs()
                .iter()
                .map(|&d| state.bit(self.bit_for_dff[&d])),
        );
    }

    /// Reconstruct an [`MpuState`] from a netlist state vector.
    ///
    /// # Panics
    ///
    /// Panics when the vector length does not match the DFF count.
    pub fn state_from_vector(&self, vector: &[bool]) -> MpuState {
        assert_eq!(vector.len(), self.netlist.dffs().len());
        let mut state = MpuState::default();
        for (i, &d) in self.netlist.dffs().iter().enumerate() {
            state.set_bit(self.bit_for_dff[&d], vector[i]);
        }
        state
    }

    /// The primary-input vector (in [`Netlist::inputs`] order) presenting a
    /// request and/or configuration write to the netlist.
    pub fn input_values(&self, req: Option<AccessReq>, cfg: Option<CfgWrite>) -> Vec<bool> {
        let mut v = Vec::with_capacity(self.netlist.inputs().len());
        self.input_values_into(req, cfg, &mut v);
        v
    }

    /// [`MpuNetlist::input_values`] into a caller-owned buffer (cleared
    /// first).
    pub fn input_values_into(
        &self,
        req: Option<AccessReq>,
        cfg: Option<CfgWrite>,
        v: &mut Vec<bool>,
    ) {
        v.clear();
        let (addr, kind, user, valid) = match req {
            Some(r) => (r.addr, r.kind.code(), r.user, true),
            None => (0, 0, false, false),
        };
        for b in 0..ADDR_BITS {
            v.push(addr >> b & 1 == 1);
        }
        v.push(kind & 1 == 1);
        v.push(kind & 2 == 2);
        v.push(user);
        v.push(valid);
        let (wen, index, wdata) = match cfg {
            Some(w) => (true, w.index, w.data),
            None => (false, 0, 0),
        };
        v.push(wen);
        for b in 0..4 {
            v.push(index >> b & 1 == 1);
        }
        for b in 0..ADDR_BITS {
            v.push(wdata >> b & 1 == 1);
        }
        debug_assert_eq!(v.len(), self.netlist.inputs().len());
    }
}

impl Default for MpuNetlist {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mpu::{perm, AccessKind, MpuConfig, MpuRegion};
    use xlmc_gatesim::cycle::CycleSim;

    fn sample_config() -> MpuConfig {
        MpuConfig {
            enable: true,
            regions: [
                MpuRegion {
                    base: 0x0000,
                    limit: 0x5fff,
                    perms: perm::R | perm::W | perm::X | perm::USER,
                },
                MpuRegion {
                    base: 0x6000,
                    limit: 0x6fff,
                    perms: perm::R | perm::USER,
                },
                MpuRegion::default(),
                MpuRegion {
                    base: 0xf000,
                    limit: 0xffff,
                    perms: perm::R | perm::W,
                },
            ],
        }
    }

    #[test]
    fn elaboration_is_wellformed_and_sized() {
        let m = MpuNetlist::new();
        let stats = m.netlist().stats();
        assert_eq!(stats.dffs, MpuBit::all().len());
        assert!(stats.combinational > 400, "got {}", stats.combinational);
        assert!(stats.area > 0.0);
    }

    #[test]
    fn state_vector_roundtrips() {
        let m = MpuNetlist::new();
        let mut state = MpuState {
            config: sample_config(),
            ..Default::default()
        };
        state.pipe_addr = 0xabcd;
        state.pipe_kind = 2;
        state.pipe_user = true;
        state.pipe_valid = true;
        state.violation = true;
        state.sticky_addr = 0x1234;
        let v = m.state_vector(&state);
        assert_eq!(m.state_from_vector(&v), state);
    }

    #[test]
    fn every_dff_maps_to_a_bit_and_back() {
        let m = MpuNetlist::new();
        for &d in m.netlist().dffs() {
            let bit = m.bit_of(d).expect("unmapped dff");
            assert_eq!(m.dff(bit), d);
        }
    }

    /// The core cross-level consistency check: the netlist and the
    /// functional model agree cycle-by-cycle on random stimulus.
    #[test]
    fn equivalence_with_functional_model() {
        let m = MpuNetlist::new();
        let sim = CycleSim::new(m.netlist()).unwrap();
        let mut rtl = MpuState::default();
        let mut gate_state = m.state_vector(&rtl);

        // Deterministic pseudo-random stimulus covering requests, idle
        // cycles and configuration writes.
        let mut rng_state = 0x12345678u64;
        let mut rng = move || {
            rng_state = rng_state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (rng_state >> 33) as u32
        };
        for cycle in 0..600 {
            let r = rng();
            let req = if r % 4 != 0 {
                Some(AccessReq {
                    addr: (rng() & 0xffff) as u16,
                    kind: match rng() % 3 {
                        0 => AccessKind::Read,
                        1 => AccessKind::Write,
                        _ => AccessKind::Exec,
                    },
                    user: rng() % 2 == 0,
                })
            } else {
                None
            };
            let cfg = if rng() % 5 == 0 {
                Some(CfgWrite {
                    index: (rng() % 14) as u8,
                    data: (rng() & 0xffff) as u16,
                })
            } else {
                None
            };

            let inputs = m.input_values(req, cfg);
            let cv = sim.eval(m.netlist(), &gate_state, &inputs);

            // Combinational responding signal must agree.
            assert_eq!(
                cv.value(m.responding_signal()),
                rtl.viol_comb(),
                "viol_comb mismatch at cycle {cycle}"
            );

            rtl.step(req, cfg);
            gate_state = cv.next_state().to_vec();
            let expect = m.state_vector(&rtl);
            assert_eq!(gate_state, expect, "state mismatch after cycle {cycle}");
        }
    }

    #[test]
    fn netlist_detects_violation_like_rtl() {
        let m = MpuNetlist::new();
        let sim = CycleSim::new(m.netlist()).unwrap();
        let mut rtl = MpuState {
            config: sample_config(),
            ..Default::default()
        };
        let mut state = m.state_vector(&rtl);
        // Present an illegal user write to 0x7000, then an idle cycle.
        let illegal = AccessReq {
            addr: 0x7000,
            kind: AccessKind::Write,
            user: true,
        };
        for (req, expect_viol_q) in [(Some(illegal), false), (None, false), (None, true)] {
            let inputs = m.input_values(req, None);
            let cv = sim.eval(m.netlist(), &state, &inputs);
            assert_eq!(
                state[m
                    .netlist()
                    .dffs()
                    .iter()
                    .position(|&d| d == m.violation_register())
                    .unwrap()],
                expect_viol_q
            );
            rtl.step(req, None);
            state = cv.next_state().to_vec();
        }
        // The violation register clears once the pipeline moves on, but the
        // sticky flag records that it fired.
        assert!(rtl.sticky_violation);
    }

    #[test]
    fn responding_signal_cone_contains_config_and_pipe_registers() {
        let m = MpuNetlist::new();
        let cones = xlmc_netlist::cones::fanin_cone(m.netlist(), m.responding_signal(), 1);
        let frame0 = cones.frame(0);
        assert!(frame0.contains(m.dff(MpuBit::Enable)));
        assert!(frame0.contains(m.dff(MpuBit::PipeAddr(0))));
        assert!(frame0.contains(m.dff(MpuBit::Base(0, 15))));
        assert!(frame0.contains(m.dff(MpuBit::Perms(3, 3))));
        // Sticky registers are in the fanout, not the fanin.
        assert!(!frame0.contains(m.dff(MpuBit::StickyViol)));
    }
}
