//! The CPU core: a small in-order machine with privilege modes and traps.
//!
//! The core executes one instruction per cycle (loads take one extra cycle
//! for the data return). It owns no memory: executing an instruction yields
//! a [`CoreAction`] that the SoC routes through the bus and the MPU check
//! pipeline. Traps arrive asynchronously from the MPU's registered
//! `access_violation` signal, or synchronously from `ecall`.

use crate::isa::{Csr, Instr, Reg};
use serde::{Deserialize, Serialize};

/// Why the core most recently trapped ([`Csr::Cause`] values).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrapCause {
    /// No trap has occurred.
    None,
    /// The MPU raised `access_violation`.
    MpuFault,
    /// An `ecall` instruction.
    Ecall,
}

impl TrapCause {
    /// The value stored in [`Csr::Cause`].
    pub fn code(self) -> u32 {
        match self {
            TrapCause::None => 0,
            TrapCause::MpuFault => 1,
            TrapCause::Ecall => 2,
        }
    }
}

/// The memory side-effect requested by one executed instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreAction {
    /// No memory access.
    None,
    /// Read a word; the data is delivered into `rd` on the next cycle.
    Read {
        /// The byte address.
        addr: u32,
        /// Destination register.
        rd: Reg,
    },
    /// Write a word.
    Write {
        /// The byte address.
        addr: u32,
        /// The value to store.
        value: u32,
    },
}

/// The architectural state of the core.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Core {
    /// General registers; `regs[0]` reads as zero.
    pub regs: [u32; 16],
    /// Program counter (byte address).
    pub pc: u32,
    /// Privilege mode; resets to privileged.
    pub privileged: bool,
    /// Exception PC.
    pub epc: u32,
    /// Trap cause code.
    pub cause: u32,
    /// Trap vector.
    pub tvec: u32,
    /// Security response flag (set by the trap handler on isolation).
    pub isolated: u32,
    /// Handler scratch.
    pub scratch: u32,
    /// Whether the core has executed `halt`.
    pub halted: bool,
    /// A pending load: the destination waiting for data.
    load_wait: Option<Reg>,
}

impl Default for Core {
    fn default() -> Self {
        Self::new()
    }
}

impl Core {
    /// A core in reset state: privileged, `pc = 0`.
    pub fn new() -> Self {
        Self {
            regs: [0; 16],
            pc: 0,
            privileged: true,
            epc: 0,
            cause: 0,
            tvec: 0,
            isolated: 0,
            scratch: 0,
            halted: false,
            load_wait: None,
        }
    }

    /// Whether the core is stalled waiting for load data.
    pub fn load_pending(&self) -> bool {
        self.load_wait.is_some()
    }

    /// Fold the core's full architectural state — including the private
    /// load-wait latch — into a fingerprint accumulator.
    pub(crate) fn fold_fingerprint(&self, fold: &mut impl FnMut(u64)) {
        for &r in &self.regs {
            fold(u64::from(r));
        }
        fold(u64::from(self.pc));
        fold(u64::from(self.privileged) | (u64::from(self.halted) << 1));
        fold(u64::from(self.epc));
        fold(u64::from(self.cause));
        fold(u64::from(self.tvec));
        fold(u64::from(self.isolated));
        fold(u64::from(self.scratch));
        fold(match self.load_wait {
            Some(r) => 1 + u64::from(r.0),
            None => 0,
        });
    }

    /// Deliver load data requested on a previous cycle.
    pub fn deliver_load(&mut self, value: u32) {
        if let Some(rd) = self.load_wait.take() {
            self.write_reg(rd, value);
        }
    }

    fn read_reg(&self, r: Reg) -> u32 {
        if r.0 == 0 {
            0
        } else {
            self.regs[r.index()]
        }
    }

    fn write_reg(&mut self, r: Reg, v: u32) {
        if r.0 != 0 {
            self.regs[r.index()] = v;
        }
    }

    fn csr_read(&self, csr: Csr) -> u32 {
        match csr {
            Csr::Status => u32::from(self.privileged),
            Csr::Epc => self.epc,
            Csr::Cause => self.cause,
            Csr::Tvec => self.tvec,
            Csr::Isolated => self.isolated,
            Csr::Scratch => self.scratch,
        }
    }

    fn csr_write(&mut self, csr: Csr, v: u32) {
        match csr {
            // STATUS is read-only; privilege changes via trap entry / mret.
            Csr::Status => {}
            Csr::Epc => self.epc = v,
            Csr::Cause => self.cause = v,
            Csr::Tvec => self.tvec = v,
            Csr::Isolated => self.isolated = v,
            Csr::Scratch => self.scratch = v,
        }
    }

    /// Enter the trap handler.
    ///
    /// `resume_pc` is the address `mret` will return to.
    pub fn trap(&mut self, cause: TrapCause, resume_pc: u32) {
        self.epc = resume_pc;
        self.cause = cause.code();
        self.privileged = true;
        self.pc = self.tvec;
        // A pending load is abandoned on trap entry.
        self.load_wait = None;
    }

    /// Execute the instruction word fetched at the current `pc`.
    ///
    /// Advances `pc`, updates registers, and returns the memory action the
    /// SoC must perform. Undecodable words execute as `halt` (the core has
    /// no illegal-instruction trap).
    ///
    /// # Panics
    ///
    /// Panics when called while halted or while a load is pending; the SoC
    /// step function maintains both invariants.
    pub fn execute(&mut self, word: u32) -> CoreAction {
        assert!(!self.halted, "execute on a halted core");
        assert!(self.load_wait.is_none(), "execute while load pending");
        let Ok(instr) = Instr::decode(word) else {
            self.halted = true;
            return CoreAction::None;
        };
        let mut next_pc = self.pc.wrapping_add(4);
        let mut action = CoreAction::None;
        match instr {
            Instr::Add(d, a, b) => {
                let v = self.read_reg(a).wrapping_add(self.read_reg(b));
                self.write_reg(d, v);
            }
            Instr::Sub(d, a, b) => {
                let v = self.read_reg(a).wrapping_sub(self.read_reg(b));
                self.write_reg(d, v);
            }
            Instr::And(d, a, b) => {
                let v = self.read_reg(a) & self.read_reg(b);
                self.write_reg(d, v);
            }
            Instr::Or(d, a, b) => {
                let v = self.read_reg(a) | self.read_reg(b);
                self.write_reg(d, v);
            }
            Instr::Xor(d, a, b) => {
                let v = self.read_reg(a) ^ self.read_reg(b);
                self.write_reg(d, v);
            }
            Instr::Sll(d, a, b) => {
                let v = self.read_reg(a) << (self.read_reg(b) & 31);
                self.write_reg(d, v);
            }
            Instr::Srl(d, a, b) => {
                let v = self.read_reg(a) >> (self.read_reg(b) & 31);
                self.write_reg(d, v);
            }
            Instr::Sltu(d, a, b) => {
                let v = u32::from(self.read_reg(a) < self.read_reg(b));
                self.write_reg(d, v);
            }
            Instr::Addi(d, a, i) => {
                let v = self.read_reg(a).wrapping_add(i as u32);
                self.write_reg(d, v);
            }
            Instr::Andi(d, a, i) => {
                let v = self.read_reg(a) & i as u32;
                self.write_reg(d, v);
            }
            Instr::Ori(d, a, i) => {
                let v = self.read_reg(a) | i as u32;
                self.write_reg(d, v);
            }
            Instr::Xori(d, a, i) => {
                let v = self.read_reg(a) ^ i as u32;
                self.write_reg(d, v);
            }
            Instr::Li(d, i) => self.write_reg(d, i as u32),
            Instr::Lw(d, a, i) => {
                let addr = self.read_reg(a).wrapping_add(i as u32);
                self.load_wait = Some(d);
                action = CoreAction::Read { addr, rd: d };
            }
            Instr::Sw(s, a, i) => {
                let addr = self.read_reg(a).wrapping_add(i as u32);
                action = CoreAction::Write {
                    addr,
                    value: self.read_reg(s),
                };
            }
            Instr::Beq(a, b, off) => {
                if self.read_reg(a) == self.read_reg(b) {
                    next_pc = self.pc.wrapping_add(off as u32);
                }
            }
            Instr::Bne(a, b, off) => {
                if self.read_reg(a) != self.read_reg(b) {
                    next_pc = self.pc.wrapping_add(off as u32);
                }
            }
            Instr::Bltu(a, b, off) => {
                if self.read_reg(a) < self.read_reg(b) {
                    next_pc = self.pc.wrapping_add(off as u32);
                }
            }
            Instr::Jal(d, off) => {
                self.write_reg(d, self.pc.wrapping_add(4));
                next_pc = self.pc.wrapping_add(off as u32);
            }
            Instr::Jalr(d, a, i) => {
                let target = self.read_reg(a).wrapping_add(i as u32);
                self.write_reg(d, self.pc.wrapping_add(4));
                next_pc = target;
            }
            Instr::Csrrw(d, csr, s) => {
                let old = self.csr_read(csr);
                let new = self.read_reg(s);
                // CSR writes are privileged; user-mode writes are ignored
                // (reads are allowed for simplicity).
                if self.privileged {
                    self.csr_write(csr, new);
                }
                self.write_reg(d, old);
            }
            Instr::Ecall => {
                self.pc = next_pc;
                self.trap(TrapCause::Ecall, next_pc);
                return CoreAction::None;
            }
            Instr::Mret => {
                self.privileged = false;
                next_pc = self.epc;
            }
            Instr::Halt => {
                self.halted = true;
                return CoreAction::None;
            }
            Instr::Nop => {}
        }
        self.pc = next_pc;
        action
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exec(core: &mut Core, i: Instr) -> CoreAction {
        core.execute(i.encode())
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let mut c = Core::new();
        exec(&mut c, Instr::Li(Reg(0), 42));
        assert_eq!(c.regs[0], 0);
        exec(&mut c, Instr::Addi(Reg(1), Reg(0), 7));
        assert_eq!(c.regs[1], 7);
    }

    #[test]
    fn alu_ops() {
        let mut c = Core::new();
        exec(&mut c, Instr::Li(Reg(1), 12));
        exec(&mut c, Instr::Li(Reg(2), 5));
        exec(&mut c, Instr::Add(Reg(3), Reg(1), Reg(2)));
        assert_eq!(c.regs[3], 17);
        exec(&mut c, Instr::Sub(Reg(4), Reg(1), Reg(2)));
        assert_eq!(c.regs[4], 7);
        exec(&mut c, Instr::And(Reg(5), Reg(1), Reg(2)));
        assert_eq!(c.regs[5], 4);
        exec(&mut c, Instr::Or(Reg(6), Reg(1), Reg(2)));
        assert_eq!(c.regs[6], 13);
        exec(&mut c, Instr::Xor(Reg(7), Reg(1), Reg(2)));
        assert_eq!(c.regs[7], 9);
        exec(&mut c, Instr::Sll(Reg(8), Reg(1), Reg(2)));
        assert_eq!(c.regs[8], 12 << 5);
        exec(&mut c, Instr::Srl(Reg(9), Reg(1), Reg(2)));
        assert_eq!(c.regs[9], 0);
        exec(&mut c, Instr::Sltu(Reg(10), Reg(2), Reg(1)));
        assert_eq!(c.regs[10], 1);
    }

    #[test]
    fn branches_update_pc() {
        let mut c = Core::new();
        c.pc = 100;
        exec(&mut c, Instr::Beq(Reg(0), Reg(0), 20));
        assert_eq!(c.pc, 120);
        exec(&mut c, Instr::Bne(Reg(0), Reg(0), 20));
        assert_eq!(c.pc, 124, "not taken falls through");
        exec(&mut c, Instr::Bltu(Reg(0), Reg(0), -8));
        assert_eq!(c.pc, 128, "0 < 0 is false");
    }

    #[test]
    fn jal_and_jalr_link() {
        let mut c = Core::new();
        c.pc = 40;
        exec(&mut c, Instr::Jal(Reg(1), 100));
        assert_eq!(c.pc, 140);
        assert_eq!(c.regs[1], 44);
        exec(&mut c, Instr::Li(Reg(2), 0x200));
        exec(&mut c, Instr::Jalr(Reg(3), Reg(2), 4));
        assert_eq!(c.pc, 0x204);
        assert_eq!(c.regs[3], 148);
    }

    #[test]
    fn load_stalls_until_delivery() {
        let mut c = Core::new();
        exec(&mut c, Instr::Li(Reg(1), 0x100));
        let action = exec(&mut c, Instr::Lw(Reg(2), Reg(1), 8));
        assert_eq!(
            action,
            CoreAction::Read {
                addr: 0x108,
                rd: Reg(2)
            }
        );
        assert!(c.load_pending());
        c.deliver_load(0xdead);
        assert!(!c.load_pending());
        assert_eq!(c.regs[2], 0xdead);
    }

    #[test]
    fn store_issues_write() {
        let mut c = Core::new();
        exec(&mut c, Instr::Li(Reg(1), 0x40));
        exec(&mut c, Instr::Li(Reg(2), 99));
        let action = exec(&mut c, Instr::Sw(Reg(2), Reg(1), -4));
        assert_eq!(
            action,
            CoreAction::Write {
                addr: 0x3c,
                value: 99
            }
        );
    }

    #[test]
    fn ecall_traps_and_mret_returns_to_user() {
        let mut c = Core::new();
        c.tvec = 0x400;
        c.pc = 60;
        exec(&mut c, Instr::Ecall);
        assert_eq!(c.pc, 0x400);
        assert_eq!(c.epc, 64);
        assert_eq!(c.cause, TrapCause::Ecall.code());
        assert!(c.privileged);
        exec(&mut c, Instr::Mret);
        assert_eq!(c.pc, 64);
        assert!(!c.privileged);
    }

    #[test]
    fn async_trap_enters_handler_and_cancels_load() {
        let mut c = Core::new();
        c.tvec = 0x500;
        c.privileged = false;
        exec(&mut c, Instr::Li(Reg(1), 0x100));
        exec(&mut c, Instr::Lw(Reg(2), Reg(1), 0));
        assert!(c.load_pending());
        c.trap(TrapCause::MpuFault, c.pc);
        assert!(!c.load_pending());
        assert!(c.privileged);
        assert_eq!(c.pc, 0x500);
        assert_eq!(c.cause, TrapCause::MpuFault.code());
    }

    #[test]
    fn csr_writes_require_privilege() {
        let mut c = Core::new();
        exec(&mut c, Instr::Li(Reg(1), 0x77));
        exec(&mut c, Instr::Csrrw(Reg(0), Csr::Scratch, Reg(1)));
        assert_eq!(c.scratch, 0x77);
        // Drop to user mode; write must be ignored.
        c.privileged = false;
        exec(&mut c, Instr::Li(Reg(2), 0x11));
        exec(&mut c, Instr::Csrrw(Reg(3), Csr::Scratch, Reg(2)));
        assert_eq!(c.scratch, 0x77, "user csr write ignored");
        assert_eq!(c.regs[3], 0x77, "read still returns the old value");
    }

    #[test]
    fn status_csr_reflects_privilege_and_is_readonly() {
        let mut c = Core::new();
        exec(&mut c, Instr::Csrrw(Reg(1), Csr::Status, Reg(0)));
        assert_eq!(c.regs[1], 1);
        assert!(c.privileged, "writing STATUS must not change privilege");
    }

    #[test]
    fn halt_stops_the_core() {
        let mut c = Core::new();
        exec(&mut c, Instr::Halt);
        assert!(c.halted);
    }

    #[test]
    fn undecodable_word_halts() {
        let mut c = Core::new();
        let action = c.execute(63 << 26);
        assert_eq!(action, CoreAction::None);
        assert!(c.halted);
    }
}
