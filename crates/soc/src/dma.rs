//! The DMA peripheral: an autonomous bus master subject to MPU checks.
//!
//! Figure 1 of the paper shows the MPU checking accesses from both the core
//! *and* the peripherals. This DMA engine is that peripheral: once started
//! through its memory-mapped registers it copies `len` words from `src` to
//! `dst`, one access per free bus cycle, and every one of those accesses
//! goes through the MPU pipeline as an (untrusted) user-mode request.

use crate::mpu::{AccessKind, AccessReq};
use serde::{Deserialize, Serialize};

/// Byte address of the DMA source register.
pub const DMA_SRC: u16 = 0x8000;
/// Byte address of the DMA destination register.
pub const DMA_DST: u16 = 0x8004;
/// Byte address of the DMA length register (in words).
pub const DMA_LEN: u16 = 0x8008;
/// Byte address of the DMA control/status register.
pub const DMA_CTRL: u16 = 0x800c;

/// Transfer phase of the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Phase {
    /// Next bus turn: read `src + 4 * progress`.
    Read,
    /// Data arrived; next bus turn: write it to `dst + 4 * progress`.
    Write,
}

/// The DMA engine state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dma {
    /// Source byte address.
    pub src: u32,
    /// Destination byte address.
    pub dst: u32,
    /// Transfer length in words.
    pub len: u32,
    /// Whether a transfer is in flight.
    pub busy: bool,
    /// Words fully transferred so far.
    pub progress: u32,
    phase: Phase,
    buffer: u32,
}

impl Default for Dma {
    fn default() -> Self {
        Self::new()
    }
}

/// The bus request a DMA wants to make this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaAction {
    /// The engine is idle.
    Idle,
    /// Issue this read; deliver the data with [`Dma::deliver_read`].
    Read(AccessReq),
    /// Issue this write of `value`; acknowledge with [`Dma::write_done`].
    Write(AccessReq, u32),
}

impl Dma {
    /// An idle DMA engine.
    pub fn new() -> Self {
        Self {
            src: 0,
            dst: 0,
            len: 0,
            busy: false,
            progress: 0,
            phase: Phase::Read,
            buffer: 0,
        }
    }

    /// Fold the engine's full state — including the private transfer phase
    /// and read buffer — into a fingerprint accumulator.
    pub(crate) fn fold_fingerprint(&self, fold: &mut impl FnMut(u64)) {
        fold(u64::from(self.src));
        fold(u64::from(self.dst));
        fold(u64::from(self.len));
        fold(u64::from(self.busy) | (u64::from(self.progress) << 1));
        fold(match self.phase {
            Phase::Read => u64::from(self.buffer) << 1,
            Phase::Write => (u64::from(self.buffer) << 1) | 1,
        });
    }

    /// Handle a register write from the bus. Returns `true` when the
    /// address belongs to the DMA register window.
    pub fn reg_write(&mut self, addr: u16, value: u32) -> bool {
        match addr {
            DMA_SRC => self.src = value,
            DMA_DST => self.dst = value,
            DMA_LEN => self.len = value,
            DMA_CTRL => {
                if value & 1 == 1 && self.len > 0 {
                    self.busy = true;
                    self.progress = 0;
                    self.phase = Phase::Read;
                }
            }
            _ => return false,
        }
        true
    }

    /// Handle a register read from the bus; `None` when the address is not
    /// a DMA register.
    pub fn reg_read(&self, addr: u16) -> Option<u32> {
        Some(match addr {
            DMA_SRC => self.src,
            DMA_DST => self.dst,
            DMA_LEN => self.len,
            DMA_CTRL => u32::from(self.busy),
            _ => return None,
        })
    }

    /// The bus action the engine wants to take on a free cycle.
    pub fn action(&self) -> DmaAction {
        if !self.busy {
            return DmaAction::Idle;
        }
        match self.phase {
            Phase::Read => DmaAction::Read(AccessReq {
                addr: (self.src.wrapping_add(4 * self.progress) & 0xffff) as u16,
                kind: AccessKind::Read,
                user: true,
            }),
            Phase::Write => DmaAction::Write(
                AccessReq {
                    addr: (self.dst.wrapping_add(4 * self.progress) & 0xffff) as u16,
                    kind: AccessKind::Write,
                    user: true,
                },
                self.buffer,
            ),
        }
    }

    /// Deliver the data of the read issued from [`DmaAction::Read`].
    /// (A blocked read delivers zero; the engine cannot tell.)
    pub fn deliver_read(&mut self, value: u32) {
        self.buffer = value;
        self.phase = Phase::Write;
    }

    /// Acknowledge that the write from [`DmaAction::Write`] was resolved
    /// (committed or blocked): advance to the next word.
    pub fn write_done(&mut self) {
        self.progress += 1;
        self.phase = Phase::Read;
        if self.progress >= self.len {
            self.busy = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_file_roundtrips() {
        let mut d = Dma::new();
        assert!(d.reg_write(DMA_SRC, 0x1000));
        assert!(d.reg_write(DMA_DST, 0x2000));
        assert!(d.reg_write(DMA_LEN, 4));
        assert_eq!(d.reg_read(DMA_SRC), Some(0x1000));
        assert_eq!(d.reg_read(DMA_DST), Some(0x2000));
        assert_eq!(d.reg_read(DMA_LEN), Some(4));
        assert_eq!(d.reg_read(DMA_CTRL), Some(0));
        assert_eq!(d.reg_read(0x8010), None);
        assert!(!d.reg_write(0x8010, 1));
    }

    #[test]
    fn start_requires_nonzero_length() {
        let mut d = Dma::new();
        d.reg_write(DMA_CTRL, 1);
        assert!(!d.busy);
        d.reg_write(DMA_LEN, 1);
        d.reg_write(DMA_CTRL, 1);
        assert!(d.busy);
    }

    #[test]
    fn transfer_sequence_alternates_read_write() {
        let mut d = Dma::new();
        d.reg_write(DMA_SRC, 0x100);
        d.reg_write(DMA_DST, 0x200);
        d.reg_write(DMA_LEN, 2);
        d.reg_write(DMA_CTRL, 1);

        let DmaAction::Read(r0) = d.action() else {
            panic!("expected read")
        };
        assert_eq!(r0.addr, 0x100);
        assert_eq!(r0.kind, AccessKind::Read);
        assert!(r0.user, "DMA is an untrusted master");
        d.deliver_read(0xaa);

        let DmaAction::Write(w0, v0) = d.action() else {
            panic!("expected write")
        };
        assert_eq!(w0.addr, 0x200);
        assert_eq!(v0, 0xaa);
        d.write_done();

        let DmaAction::Read(r1) = d.action() else {
            panic!("expected read")
        };
        assert_eq!(r1.addr, 0x104);
        d.deliver_read(0xbb);
        let DmaAction::Write(w1, v1) = d.action() else {
            panic!("expected write")
        };
        assert_eq!(w1.addr, 0x204);
        assert_eq!(v1, 0xbb);
        d.write_done();

        assert!(!d.busy, "transfer complete");
        assert_eq!(d.action(), DmaAction::Idle);
        assert_eq!(d.progress, 2);
    }

    #[test]
    fn ctrl_read_reports_busy() {
        let mut d = Dma::new();
        d.reg_write(DMA_LEN, 1);
        d.reg_write(DMA_CTRL, 1);
        assert_eq!(d.reg_read(DMA_CTRL), Some(1));
    }
}
