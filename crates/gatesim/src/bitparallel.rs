//! Bit-parallel (64 cycles per word) evaluation of combinational traces.
//!
//! During pre-characterization the paper records the per-cycle logic value
//! of every register from RTL simulation, then derives the value of every
//! *combinational* node by gate-level logic simulation, "using fast
//! bit-parallel calculation". That is exactly this module: given the packed
//! per-cycle traces of the registers and primary inputs, one topological
//! sweep with word-wide boolean operations produces the packed traces of
//! every other node — 64 cycles per instruction.

use xlmc_netlist::{CellKind, GateId, Netlist, NetlistError};

/// Packed per-cycle value traces for every gate of a netlist.
///
/// Bit `c % 64` of word `c / 64` of a gate's trace is its logic value in
/// cycle `c`.
#[derive(Debug, Clone)]
pub struct PackedTraces {
    words_per_gate: usize,
    cycles: usize,
    data: Vec<u64>,
}

impl PackedTraces {
    /// Allocate all-zero traces for `netlist` over `cycles` cycles.
    pub fn zeroed(netlist: &Netlist, cycles: usize) -> Self {
        let words_per_gate = cycles.div_ceil(64).max(1);
        Self {
            words_per_gate,
            cycles,
            data: vec![0; words_per_gate * netlist.len()],
        }
    }

    /// Number of recorded cycles.
    pub fn cycles(&self) -> usize {
        self.cycles
    }

    /// The packed trace of one gate.
    pub fn trace(&self, id: GateId) -> &[u64] {
        let base = id.index() * self.words_per_gate;
        &self.data[base..base + self.words_per_gate]
    }

    fn trace_mut(&mut self, id: GateId) -> &mut [u64] {
        let base = id.index() * self.words_per_gate;
        &mut self.data[base..base + self.words_per_gate]
    }

    /// The value of `id` in cycle `c`.
    ///
    /// # Panics
    ///
    /// Panics when `c >= self.cycles()`.
    pub fn value(&self, id: GateId, c: usize) -> bool {
        assert!(c < self.cycles, "cycle {c} out of range");
        self.trace(id)[c / 64] >> (c % 64) & 1 == 1
    }

    /// Set the value of `id` in cycle `c`.
    ///
    /// # Panics
    ///
    /// Panics when `c >= self.cycles()`.
    pub fn set_value(&mut self, id: GateId, c: usize, v: bool) {
        assert!(c < self.cycles, "cycle {c} out of range");
        let w = &mut self.trace_mut(id)[c / 64];
        if v {
            *w |= 1 << (c % 64);
        } else {
            *w &= !(1 << (c % 64));
        }
    }

    /// Overwrite the full trace of one gate from a bool-per-cycle slice.
    ///
    /// # Panics
    ///
    /// Panics when `values.len() != self.cycles()`.
    pub fn set_trace(&mut self, id: GateId, values: &[bool]) {
        assert_eq!(values.len(), self.cycles, "trace length mismatch");
        for (c, &v) in values.iter().enumerate() {
            self.set_value(id, c, v);
        }
    }
}

/// Fill in the traces of every combinational gate from the already-recorded
/// traces of the sources (inputs, constants) and DFF outputs.
///
/// The caller records register and primary-input traces into `traces`
/// beforehand (e.g. from RTL simulation); this sweep derives every other
/// node, 64 cycles at a time.
///
/// # Errors
///
/// Fails when the netlist has a combinational loop.
pub fn evaluate_combinational(
    netlist: &Netlist,
    traces: &mut PackedTraces,
) -> Result<(), NetlistError> {
    // The cached straight-line program replaces per-gate worklist
    // dispatch: one flat opcode loop in topological order, no per-word
    // fanin allocation.
    let program = netlist.program()?;
    // Constants first.
    for (id, gate) in netlist.iter() {
        if let CellKind::Const(v) = gate.kind {
            let fill = if v { !0u64 } else { 0u64 };
            for w in traces.trace_mut(id) {
                *w = fill;
            }
        }
    }
    let words = traces.words_per_gate;
    let mut ins: Vec<u64> = Vec::new();
    for i in 0..program.len() {
        let op = program.opcode(i);
        let out = GateId(program.out(i) as u32);
        for w in 0..words {
            ins.clear();
            for &f in program.fanins(i) {
                ins.push(traces.trace(GateId(f))[w]);
            }
            let v = op.eval_words(&ins);
            traces.trace_mut(out)[w] = v;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::CycleSim;
    use xlmc_netlist::CellKind;

    fn mixed_netlist() -> Netlist {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let b = n.add_input("b");
        let x = n.add_gate(CellKind::Xor, &[a, b]);
        let q_id = GateId(4);
        let d = n.add_gate(CellKind::Mux, &[x, q_id, a]);
        let q = n.add_dff("q", d);
        assert_eq!(q, q_id);
        let y = n.add_gate(CellKind::Nand, &[x, q]);
        n.add_output("y", y);
        n
    }

    #[test]
    fn bitparallel_matches_scalar_simulation() {
        let n = mixed_netlist();
        let sim = CycleSim::new(&n).unwrap();
        let cycles = 200usize;
        // Deterministic pseudo-random stimulus.
        let input_at = |c: usize| vec![(c * 7 + 3) % 5 < 2, (c * 13 + 1) % 7 < 3];
        let trace = sim.run(&n, &[false], cycles, input_at);

        // Record register + input traces, then bit-parallel fill.
        let mut packed = PackedTraces::zeroed(&n, cycles);
        let q = n.find("q").unwrap();
        for (c, cv) in trace.iter().enumerate() {
            let ins = input_at(c);
            for (i, &pi) in n.inputs().iter().enumerate() {
                packed.set_value(pi, c, ins[i]);
            }
            packed.set_value(q, c, cv.value(q));
        }
        evaluate_combinational(&n, &mut packed).unwrap();

        for (c, cv) in trace.iter().enumerate() {
            for (id, _) in n.iter() {
                assert_eq!(packed.value(id, c), cv.value(id), "gate {id} cycle {c}");
            }
        }
    }

    #[test]
    fn constants_fill_whole_trace() {
        let mut n = Netlist::new();
        let c1 = n.add_const(true);
        let inv = n.add_gate(CellKind::Not, &[c1]);
        n.add_output("y", inv);
        let mut packed = PackedTraces::zeroed(&n, 100);
        evaluate_combinational(&n, &mut packed).unwrap();
        for c in 0..100 {
            assert!(packed.value(c1, c));
            assert!(!packed.value(inv, c));
        }
    }

    #[test]
    fn set_and_get_roundtrip_across_word_boundary() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let _ = a;
        let mut packed = PackedTraces::zeroed(&n, 130);
        packed.set_value(a, 0, true);
        packed.set_value(a, 63, true);
        packed.set_value(a, 64, true);
        packed.set_value(a, 129, true);
        packed.set_value(a, 64, false);
        assert!(packed.value(a, 0));
        assert!(packed.value(a, 63));
        assert!(!packed.value(a, 64));
        assert!(packed.value(a, 129));
        assert!(!packed.value(a, 100));
    }

    #[test]
    fn set_trace_bulk() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let mut packed = PackedTraces::zeroed(&n, 8);
        packed.set_trace(a, &[true, false, true, true, false, false, true, false]);
        let got: Vec<bool> = (0..8).map(|c| packed.value(a, c)).collect();
        assert_eq!(
            got,
            vec![true, false, true, true, false, false, true, false]
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_cycle_panics() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let packed = PackedTraces::zeroed(&n, 10);
        let _ = packed.value(a, 10);
    }
}
