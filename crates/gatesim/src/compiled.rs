//! Compiled-program transient kernel: 256 strikes per straight-line sweep.
//!
//! Where [`crate::batch`] interprets the netlist gate-by-gate through a
//! rank-ordered worklist (`BinaryHeap`, `Gate` pointer chases,
//! `CellKind::eval_words` dispatch), this kernel evaluates the netlist's
//! pre-compiled [`GateProgram`]: a structure-of-arrays straight-line
//! program in topological order. Lanes widen from 64 to
//! [`WIDE_LANES`] = 256 (`[u64; 4]` per net), packing four times as many
//! Monte Carlo runs into every sweep, and the worklist becomes a dirty-op
//! bitmask scanned in program order — set-bit iteration over a few words
//! instead of heap pushes and pops, while still visiting only the union
//! fanout cone of the struck cells.
//!
//! # Equivalence contract
//!
//! Lane `l` of a compiled sweep is **bit-identical** to
//! [`TransientSim::strike_with`] with that lane's strike list, stable
//! values and strike time, by the same argument as the 64-lane kernel
//! (see `crate::batch`): the program order is a topological refinement of
//! the worklist's rank induction, seeding follows the same cell rules,
//! logical masking is the same packed nominal-vs-flipped comparison, and
//! the electrical max-fold runs over the fanins in pin order with the
//! identical `fold(0.0, f64::max)` seed and iterated attenuation. Only
//! the batch-shape counters (`gates_visited`) depend on the kernel.

use xlmc_netlist::{GateProgram, NetClass, Netlist, Opcode};

use crate::batch::BatchLane;
use crate::cycle::CycleValues;
use crate::transient::TransientSim;
use xlmc_netlist::GateId;

/// Runs per compiled sweep: the lanes of a `[u64; 4]`.
pub const WIDE_LANES: usize = 256;

/// Packed words per net: `WIDE_LANES / 64`.
pub const LANE_WORDS: usize = 4;

/// A 256-lane mask, lane `l` = bit `l % 64` of word `l / 64`.
pub type WideMask = [u64; LANE_WORDS];

#[inline]
fn is_zero(m: &WideMask) -> bool {
    m.iter().all(|&w| w == 0)
}

/// Per-lane results of one compiled strike sweep.
///
/// Indexable by lane; lanes beyond the batch size report empty results.
/// Warm outcomes allocate nothing (per-lane vectors are retained).
#[derive(Debug, Clone)]
pub struct CompiledStrikeOutcome {
    latched: Vec<Vec<GateId>>,
    upset: Vec<Vec<GateId>>,
    pulses: Vec<usize>,
    gates_visited: usize,
}

impl Default for CompiledStrikeOutcome {
    fn default() -> Self {
        Self {
            latched: (0..WIDE_LANES).map(|_| Vec::new()).collect(),
            upset: (0..WIDE_LANES).map(|_| Vec::new()).collect(),
            pulses: vec![0; WIDE_LANES],
            gates_visited: 0,
        }
    }
}

impl CompiledStrikeOutcome {
    /// DFFs whose next-state bit lane `l`'s transient flipped (sorted).
    pub fn latched_dffs(&self, lane: usize) -> &[GateId] {
        &self.latched[lane]
    }

    /// DFFs lane `l` struck directly (SEU).
    pub fn upset_dffs(&self, lane: usize) -> &[GateId] {
        &self.upset[lane]
    }

    /// Number of gates that carried a propagating pulse in lane `l`.
    pub fn pulses_propagated(&self, lane: usize) -> usize {
        self.pulses[lane]
    }

    /// Ops popped from the dirty-op scan for the whole sweep (an op
    /// serving many lanes is visited once). Kernel-shape: comparable to
    /// the worklist pop count, not to the scalar kernel's per-run visits.
    pub fn gates_visited(&self) -> usize {
        self.gates_visited
    }

    /// Lane `l`'s registers in error (deduplicated, sorted), identical to
    /// [`crate::transient::StrikeOutcome::faulty_registers_into`].
    pub fn faulty_registers_into(&self, lane: usize, out: &mut Vec<GateId>) {
        out.clear();
        out.extend_from_slice(&self.latched[lane]);
        out.extend_from_slice(&self.upset[lane]);
        out.sort_unstable();
        out.dedup();
    }

    fn clear(&mut self, lanes: usize) {
        for l in 0..lanes.max(1) {
            self.latched[l].clear();
            self.upset[l].clear();
        }
        self.pulses.iter_mut().for_each(|p| *p = 0);
        self.gates_visited = 0;
    }
}

/// Reusable buffers for [`TransientSim::strike_compiled_with`].
///
/// One scratch per worker. Pulse masks reset through the `touched` list
/// (O(cone)); the per-lane timing pools (stride [`WIDE_LANES`]) need no
/// reset — a slot is only read when its lane bit is set. The dirty-op
/// bitmask is consumed back to zero by the sweep itself.
#[derive(Debug, Default)]
pub struct CompiledTransientScratch {
    /// Per net: 256-lane mask of pulses at this net.
    pulse: Vec<WideMask>,
    /// Per (net, lane): pulse start, valid iff the lane bit is set.
    start: Vec<f64>,
    /// Per (net, lane): pulse duration, valid iff the lane bit is set.
    dur: Vec<f64>,
    /// Nets whose pulse mask is nonzero (for O(cone) reset).
    touched: Vec<u32>,
    /// One bit per op: pending evaluation. Consumed in program order.
    dirty: Vec<u64>,
    /// Per net: cached packed nominal words, valid iff `nom_epoch`
    /// matches `epoch` (assembled from the value groups once per sweep).
    nom: Vec<WideMask>,
    nom_epoch: Vec<u64>,
    epoch: u64,
}

impl CompiledTransientScratch {
    #[inline]
    fn nominal(&mut self, f: usize, te_groups: &[(WideMask, &CycleValues)]) -> WideMask {
        if self.nom_epoch[f] == self.epoch {
            return self.nom[f];
        }
        let mut w = [0u64; LANE_WORDS];
        for (mask, cv) in te_groups {
            if cv.value(GateId(f as u32)) {
                for k in 0..LANE_WORDS {
                    w[k] |= mask[k];
                }
            }
        }
        self.nom[f] = w;
        self.nom_epoch[f] = self.epoch;
        w
    }
}

impl TransientSim {
    /// Simulate up to [`WIDE_LANES`] independent strikes in one compiled
    /// straight-line sweep over `program`.
    ///
    /// `program` must be the compiled program of `netlist` (normally
    /// `netlist.program()`); `te_groups` supplies the stable cycle values
    /// as disjoint 256-lane masks. Per-lane results are bit-identical to
    /// the scalar [`TransientSim::strike_with`] per the module contract.
    ///
    /// # Panics
    ///
    /// Panics when `lanes.len() > WIDE_LANES`.
    pub fn strike_compiled_with(
        &self,
        netlist: &Netlist,
        program: &GateProgram,
        te_groups: &[(WideMask, &CycleValues)],
        lanes: &[BatchLane<'_>],
        scratch: &mut CompiledTransientScratch,
        outcome: &mut CompiledStrikeOutcome,
    ) {
        assert!(lanes.len() <= WIDE_LANES, "batch of {} lanes", lanes.len());
        debug_assert_eq!(
            program.nets(),
            netlist.len(),
            "program was compiled from a different netlist"
        );
        outcome.clear(lanes.len());

        let nets = program.nets();
        let ops = program.len();
        let dirty_words = ops.div_ceil(64);
        if scratch.pulse.len() < nets {
            scratch.pulse.resize(nets, [0; LANE_WORDS]);
            scratch.start.resize(nets * WIDE_LANES, 0.0);
            scratch.dur.resize(nets * WIDE_LANES, 0.0);
            scratch.nom.resize(nets, [0; LANE_WORDS]);
            scratch.nom_epoch.resize(nets, 0);
        }
        if scratch.dirty.len() < dirty_words {
            scratch.dirty.resize(dirty_words, 0);
        }
        scratch.epoch += 1;
        debug_assert!(scratch.touched.is_empty());
        debug_assert!(scratch.dirty.iter().all(|&w| w == 0));
        debug_assert!(
            {
                let covered = te_groups.iter().fold([0u64; LANE_WORDS], |mut m, (g, _)| {
                    for k in 0..LANE_WORDS {
                        m[k] |= g[k];
                    }
                    m
                });
                lanes.iter().enumerate().all(|(l, lane)| {
                    lane.struck.is_empty() || covered[l / 64] & (1u64 << (l % 64)) != 0
                })
            },
            "a striking lane has no cycle-value group"
        );

        // Seed every lane's struck cells (same rules as the scalar kernel:
        // DFFs upset, source/marker cells inert, combinational cells pulse).
        let cfg = *self.config();
        for (l, lane) in lanes.iter().enumerate() {
            let (word, bit) = (l / 64, 1u64 << (l % 64));
            for &g in lane.struck {
                match program.net_class(g.index()) {
                    NetClass::Dff => outcome.upset[l].push(g),
                    NetClass::Inert => {}
                    NetClass::Comb => {
                        let gi = g.index();
                        let pl = &mut scratch.pulse[gi];
                        if is_zero(pl) {
                            scratch.touched.push(gi as u32);
                        }
                        if pl[word] & bit == 0 {
                            outcome.pulses[l] += 1;
                        }
                        pl[word] |= bit;
                        scratch.start[gi * WIDE_LANES + l] = lane.strike_time_ps;
                        scratch.dur[gi * WIDE_LANES + l] = cfg.initial_duration_ps;
                    }
                }
            }
        }

        // Mark the consumers of every seeded net, then sweep the dirty ops
        // in program order. Consumers always sit at higher op indices than
        // their producers (topological order), so a pulse created mid-sweep
        // only ever marks ops the scan has not yet consumed.
        for i in 0..scratch.touched.len() {
            for &c in program.consumers(scratch.touched[i] as usize) {
                scratch.dirty[(c / 64) as usize] |= 1u64 << (c % 64);
            }
        }
        let mut w = 0usize;
        while w < dirty_words {
            let b = scratch.dirty[w];
            if b == 0 {
                w += 1;
                continue;
            }
            let i = b.trailing_zeros() as usize;
            scratch.dirty[w] &= !(1u64 << i);
            let op = w * 64 + i;
            outcome.gates_visited += 1;

            let out = program.out(op);
            let existing = scratch.pulse[out];
            let fis = program.fanins(op);
            let mut any = [0u64; LANE_WORDS];
            for &f in fis {
                let p = &scratch.pulse[f as usize];
                for k in 0..LANE_WORDS {
                    any[k] |= p[k];
                }
            }
            let mut candidates = [0u64; LANE_WORDS];
            let mut have = 0u64;
            for k in 0..LANE_WORDS {
                candidates[k] = any[k] & !existing[k];
                have |= candidates[k];
            }
            if have == 0 {
                continue;
            }

            // Logical masking, all 256 lanes at once: flip each fanin
            // exactly in the lanes where it pulses and compare the packed
            // outputs (same fold identities as `CellKind::eval_words`).
            let mut flips = eval_flips(program.opcode(op), fis, te_groups, scratch);
            let mut have = 0u64;
            for k in 0..LANE_WORDS {
                flips[k] &= candidates[k];
                have |= flips[k];
            }
            if have == 0 {
                continue;
            }

            // Electrical masking per surviving lane: the scalar kernel's
            // exact max-fold and iterated attenuation, fanins in pin order.
            let delay = program.delay_ps(op);
            let mut new_lanes = [0u64; LANE_WORDS];
            for k in 0..LANE_WORDS {
                let mut fl = flips[k];
                while fl != 0 {
                    let l = k * 64 + fl.trailing_zeros() as usize;
                    fl &= fl - 1;
                    let bit = 1u64 << (l % 64);
                    let mut max_duration = 0.0f64;
                    let mut max_start = 0.0f64;
                    for &f in fis {
                        let fi = f as usize;
                        if scratch.pulse[fi][k] & bit != 0 {
                            let slot = fi * WIDE_LANES + l;
                            max_duration = max_duration.max(scratch.dur[slot]);
                            max_start = max_start.max(scratch.start[slot]);
                        }
                    }
                    let duration = max_duration - cfg.attenuation_ps;
                    if duration < cfg.min_duration_ps {
                        continue;
                    }
                    let slot = out * WIDE_LANES + l;
                    scratch.start[slot] = max_start + delay;
                    scratch.dur[slot] = duration;
                    new_lanes[k] |= bit;
                    outcome.pulses[l] += 1;
                }
            }
            if is_zero(&new_lanes) {
                continue;
            }
            if is_zero(&scratch.pulse[out]) {
                scratch.touched.push(out as u32);
            }
            for (k, &nl) in new_lanes.iter().enumerate() {
                scratch.pulse[out][k] |= nl;
            }
            for &c in program.consumers(out) {
                scratch.dirty[(c / 64) as usize] |= 1u64 << (c % 64);
            }
        }

        // Latching-window masking at each DFF's D pin, per lane.
        let window_lo = cfg.clock_period_ps - cfg.setup_ps;
        let window_hi = cfg.clock_period_ps + cfg.hold_ps;
        for &(dff, d) in program.dff_d() {
            let d = d as usize;
            for k in 0..LANE_WORDS {
                let mut pl = scratch.pulse[d][k];
                while pl != 0 {
                    let l = k * 64 + pl.trailing_zeros() as usize;
                    pl &= pl - 1;
                    let slot = d * WIDE_LANES + l;
                    let pulse_lo = scratch.start[slot];
                    let pulse_hi = pulse_lo + scratch.dur[slot];
                    if pulse_lo <= window_hi && pulse_hi >= window_lo {
                        outcome.latched[l].push(dff);
                    }
                }
            }
        }
        for v in outcome.latched.iter_mut().take(lanes.len()) {
            v.sort_unstable();
        }

        for &g in &scratch.touched {
            scratch.pulse[g as usize] = [0; LANE_WORDS];
        }
        scratch.touched.clear();
    }
}

/// `(nominal_out ^ flipped_out)` for one op over all 256 lanes, folding
/// the fanins in pin order with the identities of
/// [`CellKind::eval_words`].
#[inline]
fn eval_flips(
    op: Opcode,
    fis: &[u32],
    te_groups: &[(WideMask, &CycleValues)],
    scratch: &mut CompiledTransientScratch,
) -> WideMask {
    #[inline]
    fn operand(
        scratch: &mut CompiledTransientScratch,
        f: u32,
        te_groups: &[(WideMask, &CycleValues)],
    ) -> (WideMask, WideMask) {
        let fi = f as usize;
        let nom = scratch.nominal(fi, te_groups);
        let p = scratch.pulse[fi];
        let mut flip = nom;
        for k in 0..LANE_WORDS {
            flip[k] ^= p[k];
        }
        (nom, flip)
    }
    let mut out = [0u64; LANE_WORDS];
    match op {
        // Inversions at the output cancel in the XOR of nominal and
        // flipped, so Buf/Not, And/Nand, Or/Nor and Xor/Xnor share flip
        // computations.
        Opcode::Buf | Opcode::Not => {
            let (nom, flip) = operand(scratch, fis[0], te_groups);
            for k in 0..LANE_WORDS {
                out[k] = nom[k] ^ flip[k];
            }
        }
        Opcode::And | Opcode::Nand => {
            let mut nacc = [!0u64; LANE_WORDS];
            let mut facc = [!0u64; LANE_WORDS];
            for &f in fis {
                let (nom, flip) = operand(scratch, f, te_groups);
                for k in 0..LANE_WORDS {
                    nacc[k] &= nom[k];
                    facc[k] &= flip[k];
                }
            }
            for k in 0..LANE_WORDS {
                out[k] = nacc[k] ^ facc[k];
            }
        }
        Opcode::Or | Opcode::Nor => {
            let mut nacc = [0u64; LANE_WORDS];
            let mut facc = [0u64; LANE_WORDS];
            for &f in fis {
                let (nom, flip) = operand(scratch, f, te_groups);
                for k in 0..LANE_WORDS {
                    nacc[k] |= nom[k];
                    facc[k] |= flip[k];
                }
            }
            for k in 0..LANE_WORDS {
                out[k] = nacc[k] ^ facc[k];
            }
        }
        Opcode::Xor | Opcode::Xnor => {
            // nominal ^ flipped of a parity tree is the parity of the
            // per-fanin flips, i.e. the XOR of the pulse masks.
            for &f in fis {
                let p = &scratch.pulse[f as usize];
                for k in 0..LANE_WORDS {
                    out[k] ^= p[k];
                }
            }
        }
        Opcode::Mux => {
            let (sn, sf) = operand(scratch, fis[0], te_groups);
            let (an, af) = operand(scratch, fis[1], te_groups);
            let (bn, bf) = operand(scratch, fis[2], te_groups);
            for k in 0..LANE_WORDS {
                let nom = (!sn[k] & an[k]) | (sn[k] & bn[k]);
                let flip = (!sf[k] & af[k]) | (sf[k] & bf[k]);
                out[k] = nom ^ flip;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{BatchStrikeOutcome, BatchTransientScratch};
    use crate::cycle::CycleSim;
    use crate::transient::{StrikeOutcome, TransientConfig, TransientScratch};
    use xlmc_netlist::{CellKind, GateId, Netlist};

    struct Xs(u64);
    impl Xs {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
        fn below(&mut self, n: usize) -> usize {
            (self.next() % n as u64) as usize
        }
    }

    fn random_netlist(seed: u64, inputs: usize, gates: usize) -> Netlist {
        let mut rng = Xs(seed | 1);
        let mut n = Netlist::new();
        let mut nets: Vec<GateId> = (0..inputs).map(|i| n.add_input(format!("i{i}"))).collect();
        let kinds = [
            CellKind::And,
            CellKind::Or,
            CellKind::Nand,
            CellKind::Nor,
            CellKind::Xor,
            CellKind::Xnor,
            CellKind::Not,
            CellKind::Buf,
            CellKind::Mux,
        ];
        for gi in 0..gates {
            let kind = kinds[rng.below(kinds.len())];
            let arity = match kind {
                CellKind::Not | CellKind::Buf => 1,
                CellKind::Mux => 3,
                _ => 2,
            };
            let fanin: Vec<GateId> = (0..arity).map(|_| nets[rng.below(nets.len())]).collect();
            let g = n.add_gate(kind, &fanin);
            nets.push(g);
            if gi % 4 == 3 {
                n.add_dff(format!("q{gi}"), g);
            }
        }
        n.add_output("y", *nets.last().unwrap());
        n
    }

    fn tight() -> TransientConfig {
        TransientConfig {
            clock_period_ps: 600.0,
            setup_ps: 90.0,
            hold_ps: 40.0,
            initial_duration_ps: 120.0,
            attenuation_ps: 9.0,
            min_duration_ps: 15.0,
        }
    }

    /// The core property: every lane of the compiled kernel is
    /// bit-identical to the scalar kernel, across random netlists, random
    /// strikes, mixed strike times and mixed injection cycles, including
    /// partial batches around both the 64 and 256 lane boundaries.
    #[test]
    fn compiled_lanes_match_scalar_strikes() {
        let lane_counts = [1usize, 63, 64, 65, 200, 255, 256];
        for (seed, &lane_count) in (1u64..).zip(lane_counts.iter()) {
            let n = random_netlist(seed * 0x9E37, 6, 120);
            let program = n.program().unwrap();
            let sim = CycleSim::new(&n).unwrap();
            let dffs = n.dffs().len();
            let mut rng = Xs(seed.wrapping_mul(0xA5A5_1234) | 1);
            let vec_for = |r: &mut Xs, len: usize| -> Vec<bool> {
                (0..len).map(|_| r.next() & 1 == 1).collect()
            };
            let cv_a = sim.eval(&n, &vec_for(&mut rng, dffs), &vec_for(&mut rng, 6));
            let cv_b = sim.eval(&n, &vec_for(&mut rng, dffs), &vec_for(&mut rng, 6));
            let ts = TransientSim::new(&n, tight()).unwrap();

            let candidates: Vec<GateId> = n.iter().map(|(id, _)| id).collect();
            let strikes: Vec<(Vec<GateId>, f64)> = (0..lane_count)
                .map(|_| {
                    let k = rng.below(5);
                    let cells: Vec<GateId> = (0..k)
                        .map(|_| candidates[rng.below(candidates.len())])
                        .collect();
                    let t = (rng.below(600)) as f64;
                    (cells, t)
                })
                .collect();
            let mut mask_a = [0u64; LANE_WORDS];
            let mut mask_b = [0u64; LANE_WORDS];
            for l in 0..lane_count {
                let m = if l % 3 != 0 { &mut mask_a } else { &mut mask_b };
                m[l / 64] |= 1u64 << (l % 64);
            }
            let lanes: Vec<BatchLane> = strikes
                .iter()
                .map(|(cells, t)| BatchLane {
                    struck: cells,
                    strike_time_ps: *t,
                })
                .collect();

            let mut cscratch = CompiledTransientScratch::default();
            let mut cout = CompiledStrikeOutcome::default();
            ts.strike_compiled_with(
                &n,
                program,
                &[(mask_a, &cv_a), (mask_b, &cv_b)],
                &lanes,
                &mut cscratch,
                &mut cout,
            );

            let mut sscratch = TransientScratch::default();
            let mut sout = StrikeOutcome::default();
            for (l, (cells, t)) in strikes.iter().enumerate() {
                let cv = if mask_a[l / 64] & (1u64 << (l % 64)) != 0 {
                    &cv_a
                } else {
                    &cv_b
                };
                ts.strike_with(&n, cv, cells, *t, &mut sscratch, &mut sout);
                assert_eq!(
                    cout.latched_dffs(l),
                    &sout.latched_dffs[..],
                    "seed {seed} lane {l} latched"
                );
                assert_eq!(
                    cout.upset_dffs(l),
                    &sout.upset_dffs[..],
                    "seed {seed} lane {l} upset"
                );
                assert_eq!(
                    cout.pulses_propagated(l),
                    sout.pulses_propagated,
                    "seed {seed} lane {l} pulse count"
                );
                let mut want = Vec::new();
                sout.faulty_registers_into(&mut want);
                let mut got = Vec::new();
                cout.faulty_registers_into(l, &mut got);
                assert_eq!(got, want, "seed {seed} lane {l} faulty registers");
            }
        }
    }

    /// Compiled and 64-lane batched kernels agree lane-for-lane when both
    /// can run the batch (≤ 64 lanes).
    #[test]
    fn compiled_matches_batched_kernel() {
        for seed in [11u64, 29, 47] {
            let n = random_netlist(seed * 0x51F0, 5, 90);
            let program = n.program().unwrap();
            let sim = CycleSim::new(&n).unwrap();
            let dffs = n.dffs().len();
            let mut rng = Xs(seed | 1);
            let vec_for = |r: &mut Xs, len: usize| -> Vec<bool> {
                (0..len).map(|_| r.next() & 1 == 1).collect()
            };
            let cv = sim.eval(&n, &vec_for(&mut rng, dffs), &vec_for(&mut rng, 5));
            let ts = TransientSim::new(&n, tight()).unwrap();
            let candidates: Vec<GateId> = n.iter().map(|(id, _)| id).collect();
            let strikes: Vec<Vec<GateId>> = (0..64)
                .map(|_| {
                    (0..rng.below(4))
                        .map(|_| candidates[rng.below(candidates.len())])
                        .collect()
                })
                .collect();
            let lanes: Vec<BatchLane> = strikes
                .iter()
                .map(|cells| BatchLane {
                    struck: cells,
                    strike_time_ps: 450.0,
                })
                .collect();

            let mut bscratch = BatchTransientScratch::default();
            let mut bout = BatchStrikeOutcome::default();
            ts.strike_batch_with(&n, &[(!0u64, &cv)], &lanes, &mut bscratch, &mut bout);

            let mut cscratch = CompiledTransientScratch::default();
            let mut cout = CompiledStrikeOutcome::default();
            let wide_mask: WideMask = [!0u64, 0, 0, 0];
            ts.strike_compiled_with(
                &n,
                program,
                &[(wide_mask, &cv)],
                &lanes,
                &mut cscratch,
                &mut cout,
            );

            for l in 0..64 {
                assert_eq!(
                    cout.latched_dffs(l),
                    bout.latched_dffs(l),
                    "seed {seed} lane {l}"
                );
                assert_eq!(
                    cout.upset_dffs(l),
                    bout.upset_dffs(l),
                    "seed {seed} lane {l}"
                );
                assert_eq!(
                    cout.pulses_propagated(l),
                    bout.pulses_propagated(l),
                    "seed {seed} lane {l}"
                );
            }
        }
    }

    /// Scratch reuse across sweeps must not leak pulses between calls.
    #[test]
    fn compiled_scratch_reuse_is_clean() {
        let n = random_netlist(0xFEED, 4, 60);
        let program = n.program().unwrap();
        let sim = CycleSim::new(&n).unwrap();
        let cv = sim.eval(&n, &vec![true; n.dffs().len()], &[true, false, true, false]);
        let ts = TransientSim::new(&n, tight()).unwrap();
        let candidates: Vec<GateId> = n.iter().map(|(id, _)| id).collect();
        let mut scratch = CompiledTransientScratch::default();
        let mut out = CompiledStrikeOutcome::default();
        let mut rng = Xs(77);
        for round in 0..8 {
            let strikes: Vec<Vec<GateId>> = (0..97)
                .map(|_| {
                    (0..rng.below(4))
                        .map(|_| candidates[rng.below(candidates.len())])
                        .collect()
                })
                .collect();
            let lanes: Vec<BatchLane> = strikes
                .iter()
                .map(|cells| BatchLane {
                    struck: cells,
                    strike_time_ps: 500.0,
                })
                .collect();
            let all: WideMask = [!0u64; LANE_WORDS];
            ts.strike_compiled_with(&n, program, &[(all, &cv)], &lanes, &mut scratch, &mut out);
            for (l, cells) in strikes.iter().enumerate() {
                let fresh = ts.strike(&n, &cv, cells, 500.0);
                assert_eq!(
                    out.latched_dffs(l),
                    &fresh.latched_dffs[..],
                    "round {round}"
                );
                assert_eq!(out.upset_dffs(l), &fresh.upset_dffs[..], "round {round}");
            }
        }
    }

    /// A single-lane compiled sweep is exactly the scalar kernel.
    #[test]
    fn single_lane_compiled_is_scalar() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let g = n.add_gate(CellKind::Not, &[a]);
        let q = n.add_dff("q", g);
        let sim = CycleSim::new(&n).unwrap();
        let cv = sim.eval(&n, &[false], &[false]);
        let cfg = TransientConfig {
            clock_period_ps: 1_000.0,
            setup_ps: 1_000.0,
            hold_ps: 1_000.0,
            initial_duration_ps: 500.0,
            attenuation_ps: 0.0,
            min_duration_ps: 1.0,
        };
        let ts = TransientSim::new(&n, cfg).unwrap();
        let mut scratch = CompiledTransientScratch::default();
        let mut out = CompiledStrikeOutcome::default();
        let one: WideMask = [1, 0, 0, 0];
        ts.strike_compiled_with(
            &n,
            n.program().unwrap(),
            &[(one, &cv)],
            &[BatchLane {
                struck: &[g],
                strike_time_ps: 0.0,
            }],
            &mut scratch,
            &mut out,
        );
        assert_eq!(out.latched_dffs(0), &[q]);
        assert!(out.upset_dffs(0).is_empty());
        assert_eq!(out.pulses_propagated(0), 1);
    }
}
