//! Switching signatures and bit-flip correlation (paper §4, Observation 2).
//!
//! The switching signature `ss(g)` of a node is a binary sequence with
//! `ss_c(g) = 1` iff the logic value of `g` switches between cycle `c-1` and
//! cycle `c` (`ss_0 = 0`). The bit-flip correlation between a node `g` in the
//! `i`-th unrolled frame and a responding signal `rs` is
//!
//! ```text
//! Corr_i(g, rs) = | ss(g) & (ss(rs) << i) |  /  | ss(g) |
//! ```
//!
//! where `<<` aligns the responding-signal signature with the `i`-cycle
//! propagation latency and `|·|` is the Hamming weight — exactly the worked
//! example of the paper's Figure 3.

use xlmc_netlist::GateId;

use crate::bitparallel::PackedTraces;

/// A packed switching signature over a fixed number of cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchingSignature {
    words: Vec<u64>,
    cycles: usize,
}

impl SwitchingSignature {
    /// Derive the signature from a per-cycle value sequence.
    pub fn from_values(values: &[bool]) -> Self {
        let cycles = values.len();
        let mut words = vec![0u64; cycles.div_ceil(64).max(1)];
        for c in 1..cycles {
            if values[c] != values[c - 1] {
                words[c / 64] |= 1 << (c % 64);
            }
        }
        Self { words, cycles }
    }

    /// Derive the signature of one gate from packed traces.
    pub fn from_traces(traces: &PackedTraces, id: GateId) -> Self {
        let cycles = traces.cycles();
        let v = traces.trace(id);
        let mut words = vec![0u64; v.len()];
        // ss = v ^ (v delayed by one cycle); bit c compares cycle c with c-1.
        let mut carry = 0u64;
        for (w, &word) in words.iter_mut().zip(v.iter()) {
            let delayed = (word << 1) | carry;
            carry = word >> 63;
            *w = word ^ delayed;
        }
        // ss_0 is defined to be 0, and tail bits beyond `cycles` are cleared.
        if cycles > 0 {
            words[0] &= !1;
            let tail = cycles % 64;
            if tail != 0 {
                let last = (cycles - 1) / 64;
                words[last] &= (1u64 << tail) - 1;
            }
        }
        Self { words, cycles }
    }

    /// Parse a signature from a left-to-right binary string
    /// (leftmost character = cycle 0), as written in the paper's Figure 3.
    ///
    /// # Panics
    ///
    /// Panics on characters other than `0` and `1`.
    pub fn from_bit_string(s: &str) -> Self {
        let values: Vec<bool> = s
            .chars()
            .map(|c| match c {
                '0' => false,
                '1' => true,
                other => panic!("invalid signature character {other:?}"),
            })
            .collect();
        let cycles = values.len();
        let mut words = vec![0u64; cycles.div_ceil(64).max(1)];
        for (c, &v) in values.iter().enumerate() {
            if v {
                words[c / 64] |= 1 << (c % 64);
            }
        }
        Self { words, cycles }
    }

    /// Number of cycles covered.
    pub fn cycles(&self) -> usize {
        self.cycles
    }

    /// Hamming weight `|ss|` (number of switching cycles).
    pub fn weight(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Whether the node switches in cycle `c`.
    pub fn bit(&self, c: usize) -> bool {
        c < self.cycles && self.words[c / 64] >> (c % 64) & 1 == 1
    }

    /// The signature shifted so that `shifted.bit(c) == self.bit(c + i)`,
    /// aligning this signature with an `i`-cycle propagation latency.
    /// Negative `i` shifts the other way (fanout-side frames).
    pub fn aligned(&self, i: i32) -> Self {
        let mut out = Self {
            words: vec![0; self.words.len()],
            cycles: self.cycles,
        };
        for c in 0..self.cycles {
            let src = c as i64 + i as i64;
            if src >= 0 && (src as usize) < self.cycles && self.bit(src as usize) {
                out.words[c / 64] |= 1 << (c % 64);
            }
        }
        out
    }

    /// Hamming weight of `self & other`.
    ///
    /// # Panics
    ///
    /// Panics when the cycle counts differ.
    pub fn and_weight(&self, other: &Self) -> u32 {
        assert_eq!(self.cycles, other.cycles, "signature length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones())
            .sum()
    }
}

/// The bit-flip correlation `Corr_i(g, rs)` of the paper.
///
/// `g_ss` is the switching signature of the candidate node in unrolled frame
/// `i`, `rs_ss` the signature of the responding signal. Returns 0 when the
/// candidate never switches (the paper's formula is undefined there; a node
/// that never toggles carries no correlation evidence).
pub fn correlation(g_ss: &SwitchingSignature, rs_ss: &SwitchingSignature, i: i32) -> f64 {
    let denom = g_ss.weight();
    if denom == 0 {
        return 0.0;
    }
    let num = g_ss.and_weight(&rs_ss.aligned(i));
    f64::from(num) / f64::from(denom)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_example_reproduced_exactly() {
        // Logic values and signatures copied from the paper's Figure 3.
        let rs_logic = [true, false, false, false, true, false, false, true];
        let rs = SwitchingSignature::from_values(&rs_logic);
        assert_eq!(rs, SwitchingSignature::from_bit_string("01001101"));

        let g1 = SwitchingSignature::from_bit_string("00101101");
        let g2 = SwitchingSignature::from_bit_string("01100111");
        let g3 = SwitchingSignature::from_bit_string("01001111");

        let c1 = correlation(&g1, &rs, 0);
        let c2 = correlation(&g2, &rs, 0);
        let c3 = correlation(&g3, &rs, 1);
        assert!((c1 - 3.0 / 4.0).abs() < 1e-12, "Corr0(g1) = {c1}");
        assert!((c2 - 3.0 / 5.0).abs() < 1e-12, "Corr0(g2) = {c2}");
        assert!((c3 - 2.0 / 5.0).abs() < 1e-12, "Corr1(g3) = {c3}");
    }

    #[test]
    fn from_values_marks_transitions() {
        let ss = SwitchingSignature::from_values(&[false, true, true, false]);
        assert!(!ss.bit(0));
        assert!(ss.bit(1));
        assert!(!ss.bit(2));
        assert!(ss.bit(3));
        assert_eq!(ss.weight(), 2);
    }

    #[test]
    fn from_traces_matches_from_values_across_words() {
        use xlmc_netlist::Netlist;
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let cycles = 150usize;
        let values: Vec<bool> = (0..cycles).map(|c| (c * c + c / 3) % 4 < 2).collect();
        let mut traces = crate::bitparallel::PackedTraces::zeroed(&n, cycles);
        traces.set_trace(a, &values);
        let ss1 = SwitchingSignature::from_traces(&traces, a);
        let ss2 = SwitchingSignature::from_values(&values);
        for c in 0..cycles {
            assert_eq!(ss1.bit(c), ss2.bit(c), "cycle {c}");
        }
        assert_eq!(ss1.weight(), ss2.weight());
    }

    #[test]
    fn aligned_shifts_forward_and_backward() {
        let ss = SwitchingSignature::from_bit_string("00100000");
        // bit(2) set; aligned(1).bit(1) should see it.
        assert!(ss.aligned(1).bit(1));
        assert!(!ss.aligned(1).bit(2));
        // aligned(-1).bit(3) sees bit(2).
        assert!(ss.aligned(-1).bit(3));
        // Shifting past the ends drops bits.
        assert_eq!(ss.aligned(5).weight(), 0);
        assert_eq!(ss.aligned(-8).weight(), 0);
    }

    #[test]
    fn correlation_of_identical_signatures_is_one() {
        let ss = SwitchingSignature::from_bit_string("0110101");
        assert!((correlation(&ss, &ss, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_of_silent_node_is_zero() {
        let g = SwitchingSignature::from_bit_string("00000000");
        let rs = SwitchingSignature::from_bit_string("01001101");
        assert_eq!(correlation(&g, &rs, 0), 0.0);
    }

    #[test]
    fn correlation_is_bounded() {
        let g = SwitchingSignature::from_bit_string("0110011010");
        let rs = SwitchingSignature::from_bit_string("1010110011");
        for i in -5..=5 {
            let c = correlation(&g, &rs, i);
            assert!((0.0..=1.0).contains(&c), "Corr_{i} = {c}");
        }
    }
}
