//! Clock-glitch fault modeling: timing-violation attacks.
//!
//! The paper's holistic model explicitly covers clock-modification attacks
//! ("for attacks based on clock modification, p consists of the amplitude
//! and duration of injected clock glitches, region impacted by the
//! injection and so on"). This module provides that second technique: a
//! glitched cycle shortens the effective capture period, so flip-flops
//! whose D-pin arrival time exceeds the glitch period latch the *stale*
//! value of their data net — the value it still held from the previous
//! cycle — instead of the freshly computed one. Bits whose old and new
//! values coincide are unaffected, which is the timing-attack analog of
//! logical masking.

use crate::cycle::CycleValues;
use crate::sta::Sta;
use xlmc_netlist::{GateId, Netlist, NetlistError};

/// Clock-glitch simulator bound to one netlist (timing cached).
#[derive(Debug, Clone)]
pub struct GlitchSim {
    sta: Sta,
    nominal_period_ps: f64,
}

impl GlitchSim {
    /// Prepare a glitch simulator for `netlist` with the given nominal
    /// clock period.
    ///
    /// # Errors
    ///
    /// Fails when the netlist has a combinational loop.
    pub fn new(netlist: &Netlist, nominal_period_ps: f64) -> Result<Self, NetlistError> {
        Ok(Self {
            sta: Sta::new(netlist)?,
            nominal_period_ps,
        })
    }

    /// The nominal clock period.
    pub fn nominal_period_ps(&self) -> f64 {
        self.nominal_period_ps
    }

    /// The critical-path delay of the netlist — glitch periods above it
    /// never violate timing.
    pub fn critical_path_ps(&self) -> f64 {
        self.sta.critical_path_ps()
    }

    /// Simulate one glitched cycle.
    ///
    /// `prev` holds the stable node values of the cycle *before* the
    /// glitch, `cur` the values the glitched cycle is computing;
    /// `glitch_period_ps` is the shortened capture period. Returns the
    /// flip-flops whose latched next-state bit flips: those whose D arrival
    /// exceeds the glitch period *and* whose stale value differs from the
    /// fresh one.
    ///
    /// A `glitch_period_ps` at or above the nominal period returns no
    /// flips (the clock edge is simply where it belongs).
    pub fn glitch(
        &self,
        netlist: &Netlist,
        prev: &CycleValues,
        cur: &CycleValues,
        glitch_period_ps: f64,
    ) -> Vec<GateId> {
        if glitch_period_ps >= self.nominal_period_ps {
            return Vec::new();
        }
        let mut flipped = Vec::new();
        for &dff in netlist.dffs() {
            let d = netlist.gate(dff).fanin[0];
            if self.sta.arrival(d) > glitch_period_ps && prev.value(d) != cur.value(d) {
                flipped.push(dff);
            }
        }
        flipped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::CycleSim;
    use xlmc_netlist::{CellKind, Netlist};

    /// A short and a long path into two flops:
    ///   fast: a -> q_fast          (one buf)
    ///   slow: a -> 6 bufs -> q_slow
    fn two_paths() -> (Netlist, GateId, GateId) {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let fast = n.add_gate(CellKind::Buf, &[a]);
        let mut slow = a;
        for _ in 0..6 {
            slow = n.add_gate(CellKind::Buf, &[slow]);
        }
        let qf = n.add_dff("q_fast", fast);
        let qs = n.add_dff("q_slow", slow);
        (n, qf, qs)
    }

    fn cycles(n: &Netlist) -> (CycleValues, CycleValues) {
        let sim = CycleSim::new(n).unwrap();
        // Previous cycle: a = 0; glitched cycle: a = 1 (both paths toggle).
        let prev = sim.eval(n, &[false, false], &[false]);
        let cur = sim.eval(n, prev.next_state(), &[true]);
        (prev, cur)
    }

    #[test]
    fn tight_glitch_catches_only_the_slow_path() {
        let (n, qf, qs) = two_paths();
        let (prev, cur) = cycles(&n);
        let g = GlitchSim::new(&n, 1_200.0).unwrap();
        // Between the fast path (1 buf = 25 ps) and the slow one (150 ps).
        let flipped = g.glitch(&n, &prev, &cur, 80.0);
        assert!(flipped.contains(&qs), "slow path violates timing");
        assert!(!flipped.contains(&qf), "fast path still makes it");
    }

    #[test]
    fn severe_glitch_catches_both_paths() {
        let (n, qf, qs) = two_paths();
        let (prev, cur) = cycles(&n);
        let g = GlitchSim::new(&n, 1_200.0).unwrap();
        let flipped = g.glitch(&n, &prev, &cur, 5.0);
        assert!(flipped.contains(&qf));
        assert!(flipped.contains(&qs));
    }

    #[test]
    fn nominal_period_is_harmless() {
        let (n, _, _) = two_paths();
        let (prev, cur) = cycles(&n);
        let g = GlitchSim::new(&n, 1_200.0).unwrap();
        assert!(g.glitch(&n, &prev, &cur, 1_200.0).is_empty());
        assert!(g.glitch(&n, &prev, &cur, 5_000.0).is_empty());
    }

    #[test]
    fn stable_data_is_immune() {
        // If the data nets do not change between cycles, even a brutal
        // glitch latches the correct (identical) value.
        let (n, _, _) = two_paths();
        let sim = CycleSim::new(&n).unwrap();
        let prev = sim.eval(&n, &[true, true], &[true]);
        let cur = sim.eval(&n, prev.next_state(), &[true]);
        let g = GlitchSim::new(&n, 1_200.0).unwrap();
        assert!(g.glitch(&n, &prev, &cur, 5.0).is_empty());
    }

    #[test]
    fn critical_path_bounds_the_vulnerable_window() {
        let (n, _, _) = two_paths();
        let g = GlitchSim::new(&n, 1_200.0).unwrap();
        let cp = g.critical_path_ps();
        assert!(cp > 100.0 && cp < 400.0, "cp = {cp}");
        let (prev, cur) = cycles(&n);
        assert!(g.glitch(&n, &prev, &cur, cp + 1.0).is_empty());
    }
}
