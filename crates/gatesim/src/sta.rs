//! Static timing analysis: arrival times for the transient latching model.

use xlmc_netlist::{CellKind, GateId, Netlist, NetlistError, Topology};

/// Arrival times (in picoseconds from the clock edge) of every net.
///
/// Primary inputs and constants arrive at `t = 0`; DFF outputs launch after
/// the clock-to-Q delay; combinational arrivals are the max over fanins plus
/// the cell delay of [`CellKind::delay_ps`]. Transient pulses inherit these
/// arrival times, which is what positions them relative to the latching
/// window of the capturing flip-flops.
#[derive(Debug, Clone)]
pub struct Sta {
    arrival: Vec<f64>,
}

impl Sta {
    /// Compute arrival times for `netlist`.
    ///
    /// # Errors
    ///
    /// Fails when the netlist has a combinational loop.
    pub fn new(netlist: &Netlist) -> Result<Self, NetlistError> {
        let topo = Topology::new(netlist)?;
        let mut arrival = vec![0.0f64; netlist.len()];
        for (id, gate) in netlist.iter() {
            if gate.kind == CellKind::Dff {
                arrival[id.index()] = CellKind::Dff.delay_ps();
            }
        }
        for &id in topo.order() {
            let gate = netlist.gate(id);
            let max_in = gate
                .fanin
                .iter()
                .map(|f| arrival[f.index()])
                .fold(0.0f64, f64::max);
            arrival[id.index()] = max_in + gate.kind.delay_ps();
        }
        Ok(Self { arrival })
    }

    /// Arrival time of a net in picoseconds.
    pub fn arrival(&self, id: GateId) -> f64 {
        self.arrival[id.index()]
    }

    /// The critical-path delay: the maximum arrival over all nets.
    pub fn critical_path_ps(&self) -> f64 {
        self.arrival.iter().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_accumulates_along_chain() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let g1 = n.add_gate(CellKind::Not, &[a]);
        let g2 = n.add_gate(CellKind::Not, &[g1]);
        let sta = Sta::new(&n).unwrap();
        assert_eq!(sta.arrival(a), 0.0);
        let d = CellKind::Not.delay_ps();
        assert!((sta.arrival(g1) - d).abs() < 1e-9);
        assert!((sta.arrival(g2) - 2.0 * d).abs() < 1e-9);
        assert!((sta.critical_path_ps() - 2.0 * d).abs() < 1e-9);
    }

    #[test]
    fn arrival_takes_max_over_fanins() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let slow = n.add_gate(CellKind::Xor, &[a, a]); // 55 ps
        let fast = n.add_gate(CellKind::Not, &[a]); // 15 ps
        let merge = n.add_gate(CellKind::And, &[slow, fast]);
        let sta = Sta::new(&n).unwrap();
        let expect = CellKind::Xor.delay_ps() + CellKind::And.delay_ps();
        assert!((sta.arrival(merge) - expect).abs() < 1e-9);
    }

    #[test]
    fn dff_outputs_launch_at_clk_to_q() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let q = n.add_dff("q", a);
        let g = n.add_gate(CellKind::Not, &[q]);
        let sta = Sta::new(&n).unwrap();
        assert!((sta.arrival(q) - CellKind::Dff.delay_ps()).abs() < 1e-9);
        assert!(
            (sta.arrival(g) - (CellKind::Dff.delay_ps() + CellKind::Not.delay_ps())).abs() < 1e-9
        );
    }
}
