//! 64-lane batched transient simulation: one worklist pass, 64 strikes.
//!
//! The campaign's Monte Carlo runs are independent trials over the *same*
//! netlist, so the transient propagation of up to 64 runs packs into the
//! bit lanes of `u64` words exactly like the pre-characterization's
//! bit-parallel logic evaluation ([`crate::bitparallel`]): lane `l` of
//! every packed word belongs to run `l` of the batch. One rank-ordered
//! worklist sweep then amortizes the cone traversal, the fanout lookups
//! and the logical-masking gate evaluations across the whole batch, while
//! the per-lane electrical and latching-window timing (scalar `f64` state)
//! is only touched for lanes whose pulse actually survives logical masking
//! at that gate.
//!
//! # Equivalence contract
//!
//! For every lane `l`, the outcome is **bit-identical** to
//! [`TransientSim::strike_with`] called with that lane's strike list,
//! stable values and strike time:
//!
//! * the same gates are seeded, with the same initial pulse,
//! * propagation visits gates in the same topological-rank induction (a
//!   gate pops only after every producer's pulses are final — the batch
//!   queue is a superset union of the per-lane queues, and a popped gate
//!   is a no-op in lanes it would not have visited),
//! * logical masking is the identical predicate: packed nominal fanin
//!   words are XOR-flipped by each fanin's pulsing-lane mask, so bit `l`
//!   of `eval_words(flipped) ^ eval_words(nominal)` equals the scalar
//!   `flipped != nominal` test of lane `l`,
//! * the electrical `max`-fold over pulsing fanins runs in fanin order
//!   with the same `fold(0.0, f64::max)` seed and the same *iterated*
//!   attenuation subtraction (never an algebraically equal closed form),
//! * the latching-window comparison and the sort/dedup of the faulty
//!   register list are unchanged.
//!
//! Lanes of one batch may inject in *different* cycles: the caller passes
//! the stable cycle values as `(lane_mask, &CycleValues)` groups and the
//! kernel assembles per-gate packed nominal words from them on demand.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use xlmc_netlist::{CellKind, GateId, Netlist};

use crate::cycle::CycleValues;
use crate::transient::{StrikeOutcome, TransientSim};

/// Maximum number of runs per batch — the lanes of a `u64`.
pub const LANES: usize = 64;

/// One lane's strike: the impacted cells and the particle-hit moment.
#[derive(Debug, Clone, Copy)]
pub struct BatchLane<'a> {
    /// The struck cells of this lane's run (the radiation spot's disc).
    pub struck: &'a [GateId],
    /// The particle-hit moment within the cycle, ps after the launching
    /// clock edge.
    pub strike_time_ps: f64,
}

/// Per-lane results of one batched strike simulation.
///
/// Indexable by lane; lanes beyond the batch size report empty results.
/// The per-lane vectors are retained across calls, so a warm outcome
/// allocates nothing.
#[derive(Debug, Clone)]
pub struct BatchStrikeOutcome {
    latched: Vec<Vec<GateId>>,
    upset: Vec<Vec<GateId>>,
    pulses: [usize; LANES],
    gates_visited: usize,
}

impl Default for BatchStrikeOutcome {
    fn default() -> Self {
        Self {
            latched: (0..LANES).map(|_| Vec::new()).collect(),
            upset: (0..LANES).map(|_| Vec::new()).collect(),
            pulses: [0; LANES],
            gates_visited: 0,
        }
    }
}

impl BatchStrikeOutcome {
    /// DFFs whose next-state bit lane `l`'s transient flipped (sorted).
    pub fn latched_dffs(&self, lane: usize) -> &[GateId] {
        &self.latched[lane]
    }

    /// DFFs lane `l` struck directly (SEU).
    pub fn upset_dffs(&self, lane: usize) -> &[GateId] {
        &self.upset[lane]
    }

    /// Number of gates that carried a propagating pulse in lane `l`.
    pub fn pulses_propagated(&self, lane: usize) -> usize {
        self.pulses[lane]
    }

    /// Gates popped from the shared propagation worklist for the whole
    /// batch (a gate serving many lanes is visited once).
    pub fn gates_visited(&self) -> usize {
        self.gates_visited
    }

    /// Lane `l`'s registers in error (deduplicated, sorted), identical to
    /// [`StrikeOutcome::faulty_registers_into`].
    pub fn faulty_registers_into(&self, lane: usize, out: &mut Vec<GateId>) {
        out.clear();
        out.extend_from_slice(&self.latched[lane]);
        out.extend_from_slice(&self.upset[lane]);
        out.sort_unstable();
        out.dedup();
    }

    /// Copy lane `l` into a scalar [`StrikeOutcome`]. The worklist visit
    /// count is batch-wide, not per lane, so it is reported as 0 here.
    pub fn lane_outcome(&self, lane: usize) -> StrikeOutcome {
        StrikeOutcome {
            latched_dffs: self.latched[lane].clone(),
            upset_dffs: self.upset[lane].clone(),
            pulses_propagated: self.pulses[lane],
            gates_visited: 0,
        }
    }

    fn clear(&mut self, lanes: usize) {
        for l in 0..lanes.max(1) {
            self.latched[l].clear();
            self.upset[l].clear();
        }
        self.pulses = [0; LANES];
        self.gates_visited = 0;
    }
}

/// Reusable buffers for [`TransientSim::strike_batch_with`].
///
/// One scratch per worker. The packed pulse masks are reset through the
/// `touched` list, so per-batch cost scales with the union of the struck
/// fanout cones; the per-lane timing pools (`start`, `dur`, stride
/// [`LANES`]) need no reset at all — a slot is only read when its lane bit
/// is set in `pulse_lanes`.
#[derive(Debug, Default)]
pub struct BatchTransientScratch {
    /// Per gate: mask of lanes with a pulse at this gate's output.
    pulse_lanes: Vec<u64>,
    /// Per (gate, lane): pulse start, valid iff the lane bit is set.
    start: Vec<f64>,
    /// Per (gate, lane): pulse duration, valid iff the lane bit is set.
    dur: Vec<f64>,
    /// Gates whose `pulse_lanes` entry is nonzero (for O(cone) reset).
    touched: Vec<GateId>,
    queue: BinaryHeap<Reverse<(u32, GateId)>>,
    queued: Vec<bool>,
    enqueued: Vec<GateId>,
    ins_nom: Vec<u64>,
    ins_flip: Vec<u64>,
    /// Per net: cached packed nominal word, valid iff `nom_epoch` matches
    /// the current batch's `epoch` (a shared fanin net is assembled from
    /// the cycle-value groups once per batch, not once per consumer).
    nom: Vec<u64>,
    nom_epoch: Vec<u64>,
    epoch: u64,
}

impl TransientSim {
    /// Simulate up to [`LANES`] independent strikes in one batched pass.
    ///
    /// `te_groups` supplies the stable cycle values: each `(mask, values)`
    /// pair covers the lanes set in `mask` (masks must be disjoint and
    /// together cover every lane that strikes anything). `lanes[l]` is run
    /// `l`'s strike; per-lane results land in `outcome`, bit-identical to
    /// the scalar [`TransientSim::strike_with`] per the module contract.
    ///
    /// # Panics
    ///
    /// Panics when `lanes.len() > LANES`.
    pub fn strike_batch_with(
        &self,
        netlist: &Netlist,
        te_groups: &[(u64, &CycleValues)],
        lanes: &[BatchLane<'_>],
        scratch: &mut BatchTransientScratch,
        outcome: &mut BatchStrikeOutcome,
    ) {
        assert!(lanes.len() <= LANES, "batch of {} lanes", lanes.len());
        outcome.clear(lanes.len());

        let n = netlist.len();
        if scratch.pulse_lanes.len() < n {
            scratch.pulse_lanes.resize(n, 0);
            scratch.queued.resize(n, false);
            scratch.start.resize(n * LANES, 0.0);
            scratch.dur.resize(n * LANES, 0.0);
            scratch.nom.resize(n, 0);
            scratch.nom_epoch.resize(n, 0);
        }
        scratch.epoch += 1;
        let epoch = scratch.epoch;
        debug_assert!(scratch.touched.is_empty() && scratch.queue.is_empty());
        debug_assert!(
            {
                let covered = te_groups.iter().fold(0u64, |m, &(g, _)| m | g);
                lanes
                    .iter()
                    .enumerate()
                    .all(|(l, lane)| lane.struck.is_empty() || covered & (1u64 << l) != 0)
            },
            "a striking lane has no cycle-value group"
        );

        // Seed every lane's struck cells (same rules as the scalar kernel:
        // DFFs upset, source/marker cells inert, combinational cells pulse).
        for (l, lane) in lanes.iter().enumerate() {
            let bit = 1u64 << l;
            for &g in lane.struck {
                let gate = netlist.gate(g);
                match gate.kind {
                    CellKind::Dff => outcome.upset[l].push(g),
                    CellKind::Input | CellKind::Const(_) | CellKind::Output => {}
                    _ => {
                        let pl = &mut scratch.pulse_lanes[g.index()];
                        if *pl == 0 {
                            scratch.touched.push(g);
                        }
                        if *pl & bit == 0 {
                            outcome.pulses[l] += 1;
                        }
                        *pl |= bit;
                        scratch.start[g.index() * LANES + l] = lane.strike_time_ps;
                        scratch.dur[g.index() * LANES + l] = self.config().initial_duration_ps;
                    }
                }
            }
        }

        // Propagate in rank order over the union cone. A gate pops once;
        // lanes where it was struck keep their pulse, every other lane with
        // a pulsing fanin is a flip candidate.
        for i in 0..scratch.touched.len() {
            self.enqueue_fanouts(
                scratch.touched[i],
                &mut scratch.queue,
                &mut scratch.queued,
                &mut scratch.enqueued,
            );
        }
        let cfg = *self.config();
        while let Some(Reverse((_, id))) = scratch.queue.pop() {
            outcome.gates_visited += 1;
            let existing = scratch.pulse_lanes[id.index()];
            let gate = netlist.gate(id);
            let mut any = 0u64;
            for f in &gate.fanin {
                any |= scratch.pulse_lanes[f.index()];
            }
            let candidates = any & !existing;
            if candidates == 0 {
                continue;
            }
            // Logical masking, all lanes at once: flip each fanin exactly in
            // the lanes where it pulses and compare the packed outputs.
            scratch.ins_nom.clear();
            scratch.ins_flip.clear();
            for f in &gate.fanin {
                // Packed nominal value of the fanin net: lane l carries the
                // stable value in lane l's injection cycle, assembled from
                // the value groups once per net per batch.
                let fi = f.index();
                let w = if scratch.nom_epoch[fi] == epoch {
                    scratch.nom[fi]
                } else {
                    let mut w = 0u64;
                    for &(mask, cv) in te_groups {
                        if cv.value(*f) {
                            w |= mask;
                        }
                    }
                    scratch.nom[fi] = w;
                    scratch.nom_epoch[fi] = epoch;
                    w
                };
                scratch.ins_nom.push(w);
                scratch.ins_flip.push(w ^ scratch.pulse_lanes[fi]);
            }
            let nominal_out = gate.kind.eval_words(&scratch.ins_nom);
            let flipped_out = gate.kind.eval_words(&scratch.ins_flip);
            let mut flips = (nominal_out ^ flipped_out) & candidates;
            if flips == 0 {
                continue;
            }
            // Electrical masking per surviving lane: the scalar kernel's
            // exact max-fold and iterated attenuation, fanins in order.
            let mut new_lanes = 0u64;
            while flips != 0 {
                let l = flips.trailing_zeros() as usize;
                flips &= flips - 1;
                let bit = 1u64 << l;
                let mut max_duration = 0.0f64;
                let mut max_start = 0.0f64;
                for f in &gate.fanin {
                    if scratch.pulse_lanes[f.index()] & bit != 0 {
                        let slot = f.index() * LANES + l;
                        max_duration = max_duration.max(scratch.dur[slot]);
                        max_start = max_start.max(scratch.start[slot]);
                    }
                }
                let duration = max_duration - cfg.attenuation_ps;
                if duration < cfg.min_duration_ps {
                    continue;
                }
                let slot = id.index() * LANES + l;
                scratch.start[slot] = max_start + gate.kind.delay_ps();
                scratch.dur[slot] = duration;
                new_lanes |= bit;
                outcome.pulses[l] += 1;
            }
            if new_lanes == 0 {
                continue;
            }
            if scratch.pulse_lanes[id.index()] == 0 {
                scratch.touched.push(id);
            }
            scratch.pulse_lanes[id.index()] |= new_lanes;
            self.enqueue_fanouts(
                id,
                &mut scratch.queue,
                &mut scratch.queued,
                &mut scratch.enqueued,
            );
        }

        // Latching-window masking at each DFF's D pin, per lane.
        let window_lo = cfg.clock_period_ps - cfg.setup_ps;
        let window_hi = cfg.clock_period_ps + cfg.hold_ps;
        for &dff in netlist.dffs() {
            let d = netlist.gate(dff).fanin[0];
            let mut pl = scratch.pulse_lanes[d.index()];
            while pl != 0 {
                let l = pl.trailing_zeros() as usize;
                pl &= pl - 1;
                let slot = d.index() * LANES + l;
                let pulse_lo = scratch.start[slot];
                let pulse_hi = pulse_lo + scratch.dur[slot];
                if pulse_lo <= window_hi && pulse_hi >= window_lo {
                    outcome.latched[l].push(dff);
                }
            }
        }
        for v in outcome.latched.iter_mut().take(lanes.len()) {
            v.sort_unstable();
        }

        for &g in &scratch.touched {
            scratch.pulse_lanes[g.index()] = 0;
        }
        scratch.touched.clear();
        for &g in &scratch.enqueued {
            scratch.queued[g.index()] = false;
        }
        scratch.enqueued.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::CycleSim;
    use crate::transient::{TransientConfig, TransientScratch};

    /// A deterministic xorshift generator for structural fuzzing (no rand
    /// dependency needed at this layer).
    struct Xs(u64);
    impl Xs {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
        fn below(&mut self, n: usize) -> usize {
            (self.next() % n as u64) as usize
        }
    }

    /// Build a random layered netlist: `inputs` PIs, `gates` random
    /// combinational cells over earlier nets, a DFF on every fourth gate.
    fn random_netlist(seed: u64, inputs: usize, gates: usize) -> Netlist {
        let mut rng = Xs(seed | 1);
        let mut n = Netlist::new();
        let mut nets: Vec<GateId> = (0..inputs).map(|i| n.add_input(format!("i{i}"))).collect();
        let kinds = [
            CellKind::And,
            CellKind::Or,
            CellKind::Nand,
            CellKind::Nor,
            CellKind::Xor,
            CellKind::Xnor,
            CellKind::Not,
            CellKind::Buf,
            CellKind::Mux,
        ];
        for gi in 0..gates {
            let kind = kinds[rng.below(kinds.len())];
            let arity = match kind {
                CellKind::Not | CellKind::Buf => 1,
                CellKind::Mux => 3,
                _ => 2,
            };
            let fanin: Vec<GateId> = (0..arity).map(|_| nets[rng.below(nets.len())]).collect();
            let g = n.add_gate(kind, &fanin);
            nets.push(g);
            if gi % 4 == 3 {
                n.add_dff(format!("q{gi}"), g);
            }
        }
        n.add_output("y", *nets.last().unwrap());
        n
    }

    fn tight() -> TransientConfig {
        TransientConfig {
            clock_period_ps: 600.0,
            setup_ps: 90.0,
            hold_ps: 40.0,
            initial_duration_ps: 120.0,
            attenuation_ps: 9.0,
            min_duration_ps: 15.0,
        }
    }

    /// The core property: every lane of the batched kernel is bit-identical
    /// to the scalar kernel, across random netlists, random strike sets,
    /// mixed strike times and mixed injection cycles (two value groups).
    #[test]
    fn batched_lanes_match_scalar_strikes() {
        for seed in 1..=6u64 {
            let n = random_netlist(seed * 0x9E37, 6, 120);
            let sim = CycleSim::new(&n).unwrap();
            let dffs = n.dffs().len();
            let mut rng = Xs(seed.wrapping_mul(0xA5A5_1234) | 1);
            // Two distinct "cycles": different register/input vectors.
            let vec_for = |r: &mut Xs, len: usize| -> Vec<bool> {
                (0..len).map(|_| r.next() & 1 == 1).collect()
            };
            let cv_a = sim.eval(&n, &vec_for(&mut rng, dffs), &vec_for(&mut rng, 6));
            let cv_b = sim.eval(&n, &vec_for(&mut rng, dffs), &vec_for(&mut rng, 6));
            let ts = TransientSim::new(&n, tight()).unwrap();

            // Random lane count, including full and tiny batches.
            let lane_count = [1usize, 7, 33, 64][rng.below(4)];
            let candidates: Vec<GateId> = n.iter().map(|(id, _)| id).collect();
            let strikes: Vec<(Vec<GateId>, f64)> = (0..lane_count)
                .map(|_| {
                    let k = rng.below(5);
                    let cells: Vec<GateId> = (0..k)
                        .map(|_| candidates[rng.below(candidates.len())])
                        .collect();
                    let t = (rng.below(600)) as f64;
                    (cells, t)
                })
                .collect();
            let mask_a: u64 = (0..lane_count)
                .filter(|l| l % 3 != 0)
                .fold(0, |m, l| m | 1u64 << l);
            let mask_all = if lane_count == 64 {
                !0u64
            } else {
                (1u64 << lane_count) - 1
            };
            let mask_b = mask_all & !mask_a;
            let lanes: Vec<BatchLane> = strikes
                .iter()
                .map(|(cells, t)| BatchLane {
                    struck: cells,
                    strike_time_ps: *t,
                })
                .collect();

            let mut bscratch = BatchTransientScratch::default();
            let mut bout = BatchStrikeOutcome::default();
            ts.strike_batch_with(
                &n,
                &[(mask_a, &cv_a), (mask_b, &cv_b)],
                &lanes,
                &mut bscratch,
                &mut bout,
            );

            let mut sscratch = TransientScratch::default();
            let mut sout = StrikeOutcome::default();
            for (l, (cells, t)) in strikes.iter().enumerate() {
                let cv = if mask_a & (1u64 << l) != 0 {
                    &cv_a
                } else {
                    &cv_b
                };
                ts.strike_with(&n, cv, cells, *t, &mut sscratch, &mut sout);
                assert_eq!(
                    bout.latched_dffs(l),
                    &sout.latched_dffs[..],
                    "seed {seed} lane {l} latched"
                );
                assert_eq!(
                    bout.upset_dffs(l),
                    &sout.upset_dffs[..],
                    "seed {seed} lane {l} upset"
                );
                assert_eq!(
                    bout.pulses_propagated(l),
                    sout.pulses_propagated,
                    "seed {seed} lane {l} pulse count"
                );
                let mut want = Vec::new();
                sout.faulty_registers_into(&mut want);
                let mut got = Vec::new();
                bout.faulty_registers_into(l, &mut got);
                assert_eq!(got, want, "seed {seed} lane {l} faulty registers");
            }
        }
    }

    /// Scratch reuse across batches must not leak pulses between calls.
    #[test]
    fn batch_scratch_reuse_is_clean() {
        let n = random_netlist(0xFEED, 4, 60);
        let sim = CycleSim::new(&n).unwrap();
        let cv = sim.eval(&n, &vec![true; n.dffs().len()], &[true, false, true, false]);
        let ts = TransientSim::new(&n, tight()).unwrap();
        let candidates: Vec<GateId> = n.iter().map(|(id, _)| id).collect();
        let mut scratch = BatchTransientScratch::default();
        let mut out = BatchStrikeOutcome::default();
        let mut rng = Xs(77);
        for round in 0..8 {
            let strikes: Vec<Vec<GateId>> = (0..17)
                .map(|_| {
                    (0..rng.below(4))
                        .map(|_| candidates[rng.below(candidates.len())])
                        .collect()
                })
                .collect();
            let lanes: Vec<BatchLane> = strikes
                .iter()
                .map(|cells| BatchLane {
                    struck: cells,
                    strike_time_ps: 500.0,
                })
                .collect();
            ts.strike_batch_with(&n, &[(!0u64, &cv)], &lanes, &mut scratch, &mut out);
            for (l, cells) in strikes.iter().enumerate() {
                let fresh = ts.strike(&n, &cv, cells, 500.0);
                assert_eq!(
                    out.lane_outcome(l).latched_dffs,
                    fresh.latched_dffs,
                    "round {round}"
                );
                assert_eq!(
                    out.lane_outcome(l).upset_dffs,
                    fresh.upset_dffs,
                    "round {round}"
                );
            }
        }
    }

    /// A single-lane batch is exactly the scalar kernel.
    #[test]
    fn single_lane_batch_is_scalar() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let g = n.add_gate(CellKind::Not, &[a]);
        let q = n.add_dff("q", g);
        let sim = CycleSim::new(&n).unwrap();
        let cv = sim.eval(&n, &[false], &[false]);
        let cfg = TransientConfig {
            clock_period_ps: 1_000.0,
            setup_ps: 1_000.0,
            hold_ps: 1_000.0,
            initial_duration_ps: 500.0,
            attenuation_ps: 0.0,
            min_duration_ps: 1.0,
        };
        let ts = TransientSim::new(&n, cfg).unwrap();
        let mut scratch = BatchTransientScratch::default();
        let mut out = BatchStrikeOutcome::default();
        ts.strike_batch_with(
            &n,
            &[(1, &cv)],
            &[BatchLane {
                struck: &[g],
                strike_time_ps: 0.0,
            }],
            &mut scratch,
            &mut out,
        );
        assert_eq!(out.latched_dffs(0), &[q]);
        assert!(out.upset_dffs(0).is_empty());
        assert_eq!(out.pulses_propagated(0), 1);
    }
}
