//! Levelized two-valued cycle simulation.

use xlmc_netlist::{CellKind, GateId, Netlist, NetlistError, Topology};

/// All node values of one simulated cycle, plus the register state entering
/// the next cycle.
///
/// Default-constructs empty so callers can keep one around as a reusable
/// evaluation target for [`CycleSim::eval_into`].
#[derive(Debug, Clone, Default)]
pub struct CycleValues {
    values: Vec<bool>,
    next_state: Vec<bool>,
}

impl CycleValues {
    /// The stable value of any net during the cycle.
    pub fn value(&self, id: GateId) -> bool {
        self.values[id.index()]
    }

    /// All net values, indexed by gate id.
    pub fn values(&self) -> &[bool] {
        &self.values
    }

    /// The register state latched at the end of the cycle, in
    /// [`Netlist::dffs`] order.
    pub fn next_state(&self) -> &[bool] {
        &self.next_state
    }
}

/// A reusable levelized simulator for one netlist.
///
/// Holds the topological order; each [`CycleSim::eval`] call performs one
/// full combinational sweep. The register state vector follows the order of
/// [`Netlist::dffs`], the input vector the order of [`Netlist::inputs`].
#[derive(Debug, Clone)]
pub struct CycleSim {
    topo: Topology,
}

impl CycleSim {
    /// Prepare a simulator for `netlist`.
    ///
    /// # Errors
    ///
    /// Fails when the netlist has a combinational loop.
    pub fn new(netlist: &Netlist) -> Result<Self, NetlistError> {
        Ok(Self {
            topo: Topology::new(netlist)?,
        })
    }

    /// The underlying topological order.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Evaluate one cycle.
    ///
    /// `state[i]` is the current value of `netlist.dffs()[i]`; `inputs[i]`
    /// the value of `netlist.inputs()[i]` during this cycle.
    ///
    /// # Panics
    ///
    /// Panics when the state or input vector length does not match the
    /// netlist.
    pub fn eval(&self, netlist: &Netlist, state: &[bool], inputs: &[bool]) -> CycleValues {
        let mut out = CycleValues::default();
        self.eval_into(netlist, state, inputs, &mut out);
        out
    }

    /// [`CycleSim::eval`] into a caller-owned buffer.
    ///
    /// Reuses `out`'s allocations across calls — the campaign hot path
    /// evaluates thousands of cycles per worker without touching the
    /// allocator after the first call.
    pub fn eval_into(
        &self,
        netlist: &Netlist,
        state: &[bool],
        inputs: &[bool],
        out: &mut CycleValues,
    ) {
        assert_eq!(state.len(), netlist.dffs().len(), "state width mismatch");
        assert_eq!(inputs.len(), netlist.inputs().len(), "input width mismatch");
        out.values.clear();
        out.values.resize(netlist.len(), false);
        let values = &mut out.values;
        for (i, &d) in netlist.dffs().iter().enumerate() {
            values[d.index()] = state[i];
        }
        for (i, &pi) in netlist.inputs().iter().enumerate() {
            values[pi.index()] = inputs[i];
        }
        for (id, gate) in netlist.iter() {
            if let CellKind::Const(v) = gate.kind {
                values[id.index()] = v;
            }
        }
        for &id in self.topo.order() {
            let gate = netlist.gate(id);
            let v = match gate.fanin.len() {
                1 => gate.kind.eval(&[values[gate.fanin[0].index()]]),
                2 => gate
                    .kind
                    .eval(&[values[gate.fanin[0].index()], values[gate.fanin[1].index()]]),
                3 => gate.kind.eval(&[
                    values[gate.fanin[0].index()],
                    values[gate.fanin[1].index()],
                    values[gate.fanin[2].index()],
                ]),
                _ => {
                    let ins: Vec<bool> = gate.fanin.iter().map(|f| values[f.index()]).collect();
                    gate.kind.eval(&ins)
                }
            };
            values[id.index()] = v;
        }
        out.next_state.clear();
        out.next_state.extend(
            netlist
                .dffs()
                .iter()
                .map(|&d| out.values[netlist.gate(d).fanin[0].index()]),
        );
    }

    /// Run `cycles` cycles from `init`, feeding per-cycle inputs from
    /// `input_fn(cycle)`, and return the per-cycle values.
    pub fn run(
        &self,
        netlist: &Netlist,
        init: &[bool],
        cycles: usize,
        mut input_fn: impl FnMut(usize) -> Vec<bool>,
    ) -> Vec<CycleValues> {
        let mut state = init.to_vec();
        let mut out = Vec::with_capacity(cycles);
        for c in 0..cycles {
            let cv = self.eval(netlist, &state, &input_fn(c));
            state = cv.next_state.clone();
            out.push(cv);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        // Build a correct 2-bit counter using forward reference ids.
        let mut n = Netlist::new();
        let en = n.add_input("en");
        let q0_id = GateId(2);
        let d0 = n.add_gate(CellKind::Xor, &[en, q0_id]);
        let q0 = n.add_dff("b0", d0);
        assert_eq!(q0, q0_id);
        let carry = n.add_gate(CellKind::And, &[en, q0]);
        let q1_id = GateId(5);
        let d1 = n.add_gate(CellKind::Xor, &[carry, q1_id]);
        let q1 = n.add_dff("b1", d1);
        assert_eq!(q1, q1_id);
        n.validate().unwrap();

        let sim = CycleSim::new(&n).unwrap();
        let mut state = vec![false, false];
        let mut seen = Vec::new();
        for _ in 0..5 {
            let cv = sim.eval(&n, &state, &[true]);
            seen.push((state[0] as u8) | ((state[1] as u8) << 1));
            state = cv.next_state().to_vec();
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 0]);
    }

    #[test]
    fn enable_low_holds_state() {
        let mut n = Netlist::new();
        let en = n.add_input("en");
        let q_id = GateId(2);
        let d = n.add_gate(CellKind::Xor, &[en, q_id]);
        let q = n.add_dff("b", d);
        assert_eq!(q, q_id);
        let sim = CycleSim::new(&n).unwrap();
        let cv = sim.eval(&n, &[true], &[false]);
        assert_eq!(cv.next_state(), &[true]);
        let cv = sim.eval(&n, &[true], &[true]);
        assert_eq!(cv.next_state(), &[false]);
    }

    #[test]
    fn values_expose_internal_nets() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let inv = n.add_gate(CellKind::Not, &[a]);
        n.add_output("y", inv);
        let sim = CycleSim::new(&n).unwrap();
        let cv = sim.eval(&n, &[], &[false]);
        assert!(cv.value(inv));
        assert!(!cv.value(a));
        assert_eq!(cv.values().len(), n.len());
    }

    #[test]
    fn consts_drive_their_value() {
        let mut n = Netlist::new();
        let c1 = n.add_const(true);
        let c0 = n.add_const(false);
        let g = n.add_gate(CellKind::Or, &[c0, c1]);
        n.add_output("y", g);
        let sim = CycleSim::new(&n).unwrap();
        let cv = sim.eval(&n, &[], &[]);
        assert!(cv.value(g));
    }

    #[test]
    fn run_threads_state_across_cycles() {
        // Toggle flop (no inputs): q alternates each cycle.
        let mut n = Netlist::new();
        let q_id = GateId(1);
        let inv = n.add_gate(CellKind::Not, &[q_id]);
        let q = n.add_dff("q", inv);
        assert_eq!(q, q_id);
        let sim = CycleSim::new(&n).unwrap();
        let trace = sim.run(&n, &[false], 4, |_| vec![]);
        let qs: Vec<bool> = trace.iter().map(|cv| cv.value(q)).collect();
        assert_eq!(qs, vec![false, true, false, true]);
    }

    #[test]
    #[should_panic(expected = "state width mismatch")]
    fn wrong_state_width_panics() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        n.add_dff("q", a);
        let sim = CycleSim::new(&n).unwrap();
        let _ = sim.eval(&n, &[true, false], &[true]); // one dff, two state bits
    }
}
