//! Logic, timing and transient-fault simulation on [`xlmc_netlist`] netlists.
//!
//! This crate is the gate-level half of the cross-level flow from Li et al.
//! (DAC 2017): it owns everything that happens *inside* the fault-injection
//! cycle plus the bit-parallel machinery used by the pre-characterization.
//!
//! * [`cycle`] — levelized two-valued cycle simulation of a sequential
//!   netlist (register state in, register state + all node values out),
//! * [`bitparallel`] — 64-cycle-per-word packed evaluation of the
//!   combinational logic over recorded register/input traces, the paper's
//!   "fast bit-parallel calculation" of logic values,
//! * [`signature`] — switching signatures and the bit-flip correlation
//!   `Corr_i(g, rs)` of the paper's Observation 2 / Figure 3,
//! * [`sta`] — static arrival times used to decide transient latching,
//! * [`transient`] — single-event-transient injection at struck cells,
//!   propagation with logical/electrical masking, and latching-window
//!   analysis at the flip-flops (paper §5.3, Figure 6),
//! * [`batch`] — the 64-lane batched form of [`transient`]: up to 64
//!   independent strikes packed into `u64` lanes and propagated in one
//!   worklist pass, bit-identical per lane to the scalar kernel,
//! * [`compiled`] — the 256-lane compiled-program form of [`transient`]:
//!   the netlist's levelized SoA [`xlmc_netlist::GateProgram`] evaluated
//!   as a straight-line opcode loop with `[u64; 4]` lanes, bit-identical
//!   per lane to the scalar kernel,
//! * [`glitch`] — clock-glitch (timing-violation) fault modeling, the
//!   second attack technique of the paper's holistic model.
//!
//! # Example
//!
//! Simulate one cycle of a registered AND gate:
//!
//! ```
//! use xlmc_netlist::{CellKind, Netlist};
//! use xlmc_gatesim::cycle::CycleSim;
//!
//! # fn main() -> Result<(), xlmc_netlist::NetlistError> {
//! let mut n = Netlist::new();
//! let a = n.add_input("a");
//! let b = n.add_input("b");
//! let g = n.add_gate(CellKind::And, &[a, b]);
//! n.add_dff("q", g);
//!
//! let sim = CycleSim::new(&n)?;
//! let cycle = sim.eval(&n, &[false], &[true, true]);
//! assert_eq!(cycle.next_state(), &[true]);
//! # Ok(())
//! # }
//! ```

pub mod batch;
pub mod bitparallel;
pub mod compiled;
pub mod cycle;
pub mod glitch;
pub mod signature;
pub mod sta;
pub mod transient;

pub use batch::{BatchLane, BatchStrikeOutcome, BatchTransientScratch, LANES};
pub use compiled::{
    CompiledStrikeOutcome, CompiledTransientScratch, WideMask, LANE_WORDS, WIDE_LANES,
};
pub use cycle::{CycleSim, CycleValues};
pub use glitch::GlitchSim;
pub use signature::{correlation, SwitchingSignature};
pub use sta::Sta;
pub use transient::{StrikeOutcome, TransientConfig, TransientScratch, TransientSim};
