//! Single-event-transient injection, propagation and latching (paper §5.3).
//!
//! A radiation strike produces voltage transients at the outputs of every
//! impacted cell. During the fault-injection cycle, the gate-level
//! simulation propagates these pulses through the combinational logic in
//! topological order (Figure 6a) and applies the three classical masking
//! mechanisms:
//!
//! * **logical masking** — a pulse only passes a gate that is sensitized to
//!   the pulsing input(s) under the cycle's stable values,
//! * **electrical masking** — the pulse narrows at each level and dies once
//!   its duration falls below a threshold,
//! * **latching-window masking** — a pulse reaching a flip-flop's D pin is
//!   captured only if it overlaps the setup/hold window around the clock
//!   edge (Figure 6b).
//!
//! Strikes on sequential cells (DFFs) are modeled as single-event upsets:
//! the stored bit flips directly.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};
use xlmc_netlist::{CellKind, GateId, Netlist, NetlistError, Topology};

use crate::cycle::CycleValues;

/// Electrical and timing parameters of the transient model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransientConfig {
    /// Clock period in picoseconds.
    pub clock_period_ps: f64,
    /// Setup time of the flip-flops.
    pub setup_ps: f64,
    /// Hold time of the flip-flops.
    pub hold_ps: f64,
    /// Width of the transient generated at a struck cell output.
    pub initial_duration_ps: f64,
    /// Duration lost per traversed logic level (electrical attenuation).
    pub attenuation_ps: f64,
    /// Pulses narrower than this can no longer propagate.
    pub min_duration_ps: f64,
}

impl Default for TransientConfig {
    fn default() -> Self {
        Self {
            clock_period_ps: 1200.0,
            setup_ps: 80.0,
            hold_ps: 50.0,
            initial_duration_ps: 300.0,
            attenuation_ps: 8.0,
            min_duration_ps: 12.0,
        }
    }
}

/// A voltage pulse at a gate output: `[start, start + duration]` ps after
/// the launching clock edge.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Pulse {
    start: f64,
    duration: f64,
}

/// The result of one strike simulation.
#[derive(Debug, Clone, Default)]
pub struct StrikeOutcome {
    /// DFFs whose *next-state* bit is flipped by a latched transient.
    pub latched_dffs: Vec<GateId>,
    /// DFFs struck directly (SEU): their stored bit flips.
    pub upset_dffs: Vec<GateId>,
    /// Number of combinational gates that carried a propagating pulse.
    pub pulses_propagated: usize,
    /// Number of gates popped from the propagation worklist (visited,
    /// whether or not a pulse survived the masking checks).
    pub gates_visited: usize,
}

impl StrikeOutcome {
    /// All registers in error at the end of the injection cycle
    /// (deduplicated, sorted): direct upsets plus latched transients.
    pub fn faulty_registers(&self) -> Vec<GateId> {
        let mut all = Vec::new();
        self.faulty_registers_into(&mut all);
        all
    }

    /// [`StrikeOutcome::faulty_registers`] into a caller-owned buffer
    /// (cleared first).
    pub fn faulty_registers_into(&self, out: &mut Vec<GateId>) {
        out.clear();
        out.extend_from_slice(&self.latched_dffs);
        out.extend_from_slice(&self.upset_dffs);
        out.sort_unstable();
        out.dedup();
    }

    /// Whether the strike was completely masked (no register in error).
    pub fn is_masked(&self) -> bool {
        self.latched_dffs.is_empty() && self.upset_dffs.is_empty()
    }
}

/// Reusable buffers for [`TransientSim::strike_with`].
///
/// One scratch per worker thread; after the first few strikes no call
/// touches the allocator. The pulse array is reset through the `touched`
/// list, so the per-strike cost scales with the struck fanout cone, not
/// with the netlist.
#[derive(Debug, Default)]
pub struct TransientScratch {
    pulses: Vec<Option<Pulse>>,
    /// Gates whose `pulses` entry is `Some` (for O(cone) reset).
    touched: Vec<GateId>,
    /// Pending gates, popped in topological-rank order.
    queue: BinaryHeap<Reverse<(u32, GateId)>>,
    queued: Vec<bool>,
    enqueued: Vec<GateId>,
    ins: Vec<bool>,
    pulsing: Vec<usize>,
}

/// Transient simulator bound to one netlist (topological ranks and the
/// combinational fanout CSR cached).
#[derive(Debug, Clone)]
pub struct TransientSim {
    config: TransientConfig,
    /// Position of each combinational gate in the topological order
    /// (`u32::MAX` for sources and DFFs).
    rank: Vec<u32>,
    /// CSR adjacency: combinational consumers of each gate.
    fanout_offsets: Vec<u32>,
    fanout_targets: Vec<GateId>,
}

impl TransientSim {
    /// Prepare a transient simulator for `netlist` with `config`.
    ///
    /// # Errors
    ///
    /// Fails when the netlist has a combinational loop.
    pub fn new(netlist: &Netlist, config: TransientConfig) -> Result<Self, NetlistError> {
        let topo = Topology::new(netlist)?;
        let n = netlist.len();
        let mut rank = vec![u32::MAX; n];
        for (r, &id) in topo.order().iter().enumerate() {
            rank[id.index()] = r as u32;
        }
        // Combinational fanout edges, CSR layout. DFF consumers are absent
        // by construction (latching is checked at the D pins afterwards).
        let mut offsets = vec![0u32; n + 1];
        for &id in topo.order() {
            for f in &netlist.gate(id).fanin {
                offsets[f.index() + 1] += 1;
            }
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut next = offsets.clone();
        let mut targets = vec![GateId(0); offsets[n] as usize];
        for &id in topo.order() {
            for f in &netlist.gate(id).fanin {
                targets[next[f.index()] as usize] = id;
                next[f.index()] += 1;
            }
        }
        Ok(Self {
            config,
            rank,
            fanout_offsets: offsets,
            fanout_targets: targets,
        })
    }

    /// Enqueue the combinational consumers of `g` that are not yet queued.
    pub(crate) fn enqueue_fanouts(
        &self,
        g: GateId,
        queue: &mut BinaryHeap<Reverse<(u32, GateId)>>,
        queued: &mut [bool],
        enqueued: &mut Vec<GateId>,
    ) {
        let lo = self.fanout_offsets[g.index()] as usize;
        let hi = self.fanout_offsets[g.index() + 1] as usize;
        for &t in &self.fanout_targets[lo..hi] {
            if !queued[t.index()] {
                queued[t.index()] = true;
                enqueued.push(t);
                queue.push(Reverse((self.rank[t.index()], t)));
            }
        }
    }

    /// The configured model parameters.
    pub fn config(&self) -> &TransientConfig {
        &self.config
    }

    /// Simulate a strike on `struck` cells during a cycle with stable values
    /// `values` (from [`crate::cycle::CycleSim::eval`] on the same netlist).
    ///
    /// `strike_time_ps` is the moment of the particle hit within the cycle
    /// (0 = launching clock edge). The radiation moment is part of the
    /// attack's intrinsic uncertainty, so callers typically sample it
    /// uniformly over the clock period — pulses only latch when
    /// `strike_time + path delay` lands in the capture window, which is the
    /// latching-window masking of Figure 6(b).
    ///
    /// Struck DFFs become direct upsets (the storage node flips regardless
    /// of timing); struck combinational cells launch transients that are
    /// propagated and checked against the latching window at every reached
    /// flip-flop.
    pub fn strike(
        &self,
        netlist: &Netlist,
        values: &CycleValues,
        struck: &[GateId],
        strike_time_ps: f64,
    ) -> StrikeOutcome {
        let mut scratch = TransientScratch::default();
        let mut outcome = StrikeOutcome::default();
        self.strike_with(
            netlist,
            values,
            struck,
            strike_time_ps,
            &mut scratch,
            &mut outcome,
        );
        outcome
    }

    /// [`TransientSim::strike`] with caller-owned buffers.
    ///
    /// `outcome` is cleared and refilled; `scratch` is reset on exit. Only
    /// the struck fanout cone is visited: propagation runs a rank-ordered
    /// worklist over the precomputed fanout CSR instead of sweeping the
    /// whole topological order, and allocates nothing once the scratch is
    /// warm.
    pub fn strike_with(
        &self,
        netlist: &Netlist,
        values: &CycleValues,
        struck: &[GateId],
        strike_time_ps: f64,
        scratch: &mut TransientScratch,
        outcome: &mut StrikeOutcome,
    ) {
        outcome.latched_dffs.clear();
        outcome.upset_dffs.clear();
        outcome.pulses_propagated = 0;
        outcome.gates_visited = 0;

        let n = netlist.len();
        if scratch.pulses.len() < n {
            scratch.pulses.resize(n, None);
            scratch.queued.resize(n, false);
        }
        debug_assert!(scratch.touched.is_empty() && scratch.queue.is_empty());

        for &g in struck {
            let gate = netlist.gate(g);
            match gate.kind {
                CellKind::Dff => outcome.upset_dffs.push(g),
                CellKind::Input | CellKind::Const(_) | CellKind::Output => {}
                _ => {
                    if scratch.pulses[g.index()].is_none() {
                        scratch.touched.push(g);
                        // Every seeded gate is combinational, i.e. present in
                        // the topological order, so it carries a pulse.
                        outcome.pulses_propagated += 1;
                    }
                    scratch.pulses[g.index()] = Some(Pulse {
                        start: strike_time_ps,
                        duration: self.config.initial_duration_ps,
                    });
                }
            }
        }

        // Propagate in rank order so every gate sees its final fanin pulses.
        // A struck gate keeps its own pulse (the strike dominates anything
        // arriving from fanins).
        for i in 0..scratch.touched.len() {
            self.enqueue_fanouts(
                scratch.touched[i],
                &mut scratch.queue,
                &mut scratch.queued,
                &mut scratch.enqueued,
            );
        }
        while let Some(Reverse((_, id))) = scratch.queue.pop() {
            outcome.gates_visited += 1;
            if scratch.pulses[id.index()].is_some() {
                continue;
            }
            let gate = netlist.gate(id);
            scratch.pulsing.clear();
            for (i, f) in gate.fanin.iter().enumerate() {
                if scratch.pulses[f.index()].is_some() {
                    scratch.pulsing.push(i);
                }
            }
            if scratch.pulsing.is_empty() {
                continue;
            }
            // Logical masking: does flipping the pulsing inputs flip the
            // output under the cycle's stable side-input values?
            scratch.ins.clear();
            scratch
                .ins
                .extend(gate.fanin.iter().map(|f| values.value(*f)));
            let nominal = gate.kind.eval(&scratch.ins);
            for &i in &scratch.pulsing {
                scratch.ins[i] = !scratch.ins[i];
            }
            let flipped = gate.kind.eval(&scratch.ins);
            if flipped == nominal {
                continue;
            }
            // Electrical masking: the pulse narrows at each level.
            let max_duration = scratch
                .pulsing
                .iter()
                .map(|&i| scratch.pulses[gate.fanin[i].index()].unwrap().duration)
                .fold(0.0f64, f64::max);
            let duration = max_duration - self.config.attenuation_ps;
            if duration < self.config.min_duration_ps {
                continue;
            }
            let start = scratch
                .pulsing
                .iter()
                .map(|&i| scratch.pulses[gate.fanin[i].index()].unwrap().start)
                .fold(0.0f64, f64::max)
                + gate.kind.delay_ps();
            scratch.pulses[id.index()] = Some(Pulse { start, duration });
            scratch.touched.push(id);
            outcome.pulses_propagated += 1;
            self.enqueue_fanouts(
                id,
                &mut scratch.queue,
                &mut scratch.queued,
                &mut scratch.enqueued,
            );
        }

        // Latching-window masking at each DFF's D pin.
        let window_lo = self.config.clock_period_ps - self.config.setup_ps;
        let window_hi = self.config.clock_period_ps + self.config.hold_ps;
        for &dff in netlist.dffs() {
            let d = netlist.gate(dff).fanin[0];
            if let Some(p) = scratch.pulses[d.index()] {
                let pulse_lo = p.start;
                let pulse_hi = p.start + p.duration;
                if pulse_lo <= window_hi && pulse_hi >= window_lo {
                    outcome.latched_dffs.push(dff);
                }
            }
        }
        outcome.latched_dffs.sort_unstable();

        for &g in &scratch.touched {
            scratch.pulses[g.index()] = None;
        }
        scratch.touched.clear();
        for &g in &scratch.enqueued {
            scratch.queued[g.index()] = false;
        }
        scratch.enqueued.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::CycleSim;

    /// Config where any pulse reaching a D pin latches (huge window, no
    /// attenuation) so tests can focus on one mechanism at a time.
    fn permissive() -> TransientConfig {
        TransientConfig {
            clock_period_ps: 1_000.0,
            setup_ps: 1_000.0,
            hold_ps: 1_000.0,
            initial_duration_ps: 500.0,
            attenuation_ps: 0.0,
            min_duration_ps: 1.0,
        }
    }

    /// buf chain: a -> g -> dff
    fn chain_to_dff() -> (Netlist, GateId, GateId) {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let g = n.add_gate(CellKind::Buf, &[a]);
        let q = n.add_dff("q", g);
        (n, g, q)
    }

    #[test]
    fn pulse_reaches_and_latches() {
        let (n, g, q) = chain_to_dff();
        let sim = CycleSim::new(&n).unwrap();
        let cv = sim.eval(&n, &[false], &[false]);
        let ts = TransientSim::new(&n, permissive()).unwrap();
        let out = ts.strike(&n, &cv, &[g], 0.0);
        assert_eq!(out.latched_dffs, vec![q]);
        assert!(out.upset_dffs.is_empty());
        assert!(!out.is_masked());
        assert_eq!(out.faulty_registers(), vec![q]);
    }

    #[test]
    fn struck_register_is_direct_upset() {
        let (n, _, q) = chain_to_dff();
        let sim = CycleSim::new(&n).unwrap();
        let cv = sim.eval(&n, &[false], &[false]);
        let ts = TransientSim::new(&n, permissive()).unwrap();
        let out = ts.strike(&n, &cv, &[q], 0.0);
        assert_eq!(out.upset_dffs, vec![q]);
        assert!(out.latched_dffs.is_empty());
    }

    #[test]
    fn logical_masking_blocks_unsensitized_path() {
        // and(a, b) with b = 0: a pulse on the a-side buf is masked.
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let b = n.add_input("b");
        let buf = n.add_gate(CellKind::Buf, &[a]);
        let g = n.add_gate(CellKind::And, &[buf, b]);
        let q = n.add_dff("q", g);
        let _ = q;
        let sim = CycleSim::new(&n).unwrap();
        let ts = TransientSim::new(&n, permissive()).unwrap();

        let cv = sim.eval(&n, &[false], &[true, false]); // b = 0 blocks
        assert!(ts.strike(&n, &cv, &[buf], 0.0).is_masked());

        let cv = sim.eval(&n, &[false], &[true, true]); // b = 1 sensitizes
        assert!(!ts.strike(&n, &cv, &[buf], 0.0).is_masked());
    }

    #[test]
    fn electrical_masking_kills_narrow_pulses() {
        // A long buffer chain with aggressive attenuation.
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let mut prev = a;
        let mut first = None;
        for _ in 0..10 {
            prev = n.add_gate(CellKind::Buf, &[prev]);
            first.get_or_insert(prev);
        }
        n.add_dff("q", prev);
        let sim = CycleSim::new(&n).unwrap();
        let cv = sim.eval(&n, &[false], &[false]);
        let cfg = TransientConfig {
            initial_duration_ps: 50.0,
            attenuation_ps: 10.0,
            min_duration_ps: 20.0,
            ..permissive()
        };
        let ts = TransientSim::new(&n, cfg).unwrap();
        // Struck at the head of the chain: dies after ~3 levels.
        let out = ts.strike(&n, &cv, &[first.unwrap()], 0.0);
        assert!(out.is_masked());
        // Struck adjacent to the flop: survives.
        let out = ts.strike(&n, &cv, &[prev], 0.0);
        assert!(!out.is_masked());
    }

    #[test]
    fn latching_window_masks_early_pulses() {
        // Pulse at t≈25..75 ps; window at [950, 1030]: no overlap -> masked.
        let (n, g, _) = chain_to_dff();
        let sim = CycleSim::new(&n).unwrap();
        let cv = sim.eval(&n, &[false], &[false]);
        let cfg = TransientConfig {
            clock_period_ps: 1_000.0,
            setup_ps: 50.0,
            hold_ps: 30.0,
            initial_duration_ps: 50.0,
            attenuation_ps: 0.0,
            min_duration_ps: 1.0,
        };
        let ts = TransientSim::new(&n, cfg).unwrap();
        assert!(ts.strike(&n, &cv, &[g], 0.0).is_masked());

        // A wide pulse spanning into the window latches.
        let cfg_wide = TransientConfig {
            initial_duration_ps: 2_000.0,
            ..cfg
        };
        let ts = TransientSim::new(&n, cfg_wide).unwrap();
        assert!(!ts.strike(&n, &cv, &[g], 0.0).is_masked());
    }

    #[test]
    fn multi_cell_strike_can_fan_to_several_registers() {
        // One struck gate fans out to two flops; also strike a third flop.
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let g = n.add_gate(CellKind::Not, &[a]);
        let q1 = n.add_dff("q1", g);
        let q2 = n.add_dff("q2", g);
        let q3 = n.add_dff("q3", a);
        let sim = CycleSim::new(&n).unwrap();
        let cv = sim.eval(&n, &[false; 3], &[false]);
        let ts = TransientSim::new(&n, permissive()).unwrap();
        let out = ts.strike(&n, &cv, &[g, q3], 0.0);
        assert_eq!(out.latched_dffs, vec![q1, q2]);
        assert_eq!(out.upset_dffs, vec![q3]);
        assert_eq!(out.faulty_registers(), vec![q1, q2, q3]);
    }

    #[test]
    fn xor_always_sensitizes() {
        // XOR propagates regardless of the side input value.
        for side in [false, true] {
            let mut n = Netlist::new();
            let a = n.add_input("a");
            let b = n.add_input("b");
            let buf = n.add_gate(CellKind::Buf, &[a]);
            let g = n.add_gate(CellKind::Xor, &[buf, b]);
            n.add_dff("q", g);
            let sim = CycleSim::new(&n).unwrap();
            let cv = sim.eval(&n, &[false], &[false, side]);
            let ts = TransientSim::new(&n, permissive()).unwrap();
            assert!(!ts.strike(&n, &cv, &[buf], 0.0).is_masked(), "side {side}");
        }
    }

    #[test]
    fn strike_on_input_or_output_marker_is_ignored() {
        let (n, _, _) = chain_to_dff();
        let sim = CycleSim::new(&n).unwrap();
        let cv = sim.eval(&n, &[false], &[false]);
        let ts = TransientSim::new(&n, permissive()).unwrap();
        let a = n.inputs()[0];
        assert!(ts.strike(&n, &cv, &[a], 0.0).is_masked());
    }

    #[test]
    fn scratch_reuse_matches_fresh_strikes() {
        // Drive several different strikes through ONE scratch/outcome pair;
        // each must equal the allocating API's result (stale state in the
        // scratch would leak pulses between strikes).
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let g = n.add_gate(CellKind::Not, &[a]);
        let q1 = n.add_dff("q1", g);
        let q2 = n.add_dff("q2", g);
        let q3 = n.add_dff("q3", a);
        let sim = CycleSim::new(&n).unwrap();
        let cv = sim.eval(&n, &[false; 3], &[false]);
        let ts = TransientSim::new(&n, permissive()).unwrap();

        let mut scratch = TransientScratch::default();
        let mut out = StrikeOutcome::default();
        let strikes: &[&[GateId]] = &[&[g, q3], &[q1], &[], &[g], &[g, g], &[q2, q3]];
        for struck in strikes {
            ts.strike_with(&n, &cv, struck, 0.0, &mut scratch, &mut out);
            let fresh = ts.strike(&n, &cv, struck, 0.0);
            assert_eq!(out.latched_dffs, fresh.latched_dffs, "struck {struck:?}");
            assert_eq!(out.upset_dffs, fresh.upset_dffs, "struck {struck:?}");
            assert_eq!(
                out.pulses_propagated, fresh.pulses_propagated,
                "struck {struck:?}"
            );
        }
    }

    #[test]
    fn reconvergent_pulses_cancel_logically() {
        // a -> buf -> (x, y); xor(x_path, y_path) reconverges: flipping both
        // inputs of the XOR leaves the output unchanged -> masked.
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let buf = n.add_gate(CellKind::Buf, &[a]);
        let p1 = n.add_gate(CellKind::Buf, &[buf]);
        let p2 = n.add_gate(CellKind::Buf, &[buf]);
        let g = n.add_gate(CellKind::Xor, &[p1, p2]);
        n.add_dff("q", g);
        let sim = CycleSim::new(&n).unwrap();
        let cv = sim.eval(&n, &[false], &[true]);
        let ts = TransientSim::new(&n, permissive()).unwrap();
        let out = ts.strike(&n, &cv, &[buf], 0.0);
        assert!(out.is_masked(), "reconvergent flip must cancel in XOR");
    }
}
