//! Single-event-transient injection, propagation and latching (paper §5.3).
//!
//! A radiation strike produces voltage transients at the outputs of every
//! impacted cell. During the fault-injection cycle, the gate-level
//! simulation propagates these pulses through the combinational logic in
//! topological order (Figure 6a) and applies the three classical masking
//! mechanisms:
//!
//! * **logical masking** — a pulse only passes a gate that is sensitized to
//!   the pulsing input(s) under the cycle's stable values,
//! * **electrical masking** — the pulse narrows at each level and dies once
//!   its duration falls below a threshold,
//! * **latching-window masking** — a pulse reaching a flip-flop's D pin is
//!   captured only if it overlaps the setup/hold window around the clock
//!   edge (Figure 6b).
//!
//! Strikes on sequential cells (DFFs) are modeled as single-event upsets:
//! the stored bit flips directly.

use serde::{Deserialize, Serialize};
use xlmc_netlist::{CellKind, GateId, Netlist, NetlistError, Topology};

use crate::cycle::CycleValues;

/// Electrical and timing parameters of the transient model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransientConfig {
    /// Clock period in picoseconds.
    pub clock_period_ps: f64,
    /// Setup time of the flip-flops.
    pub setup_ps: f64,
    /// Hold time of the flip-flops.
    pub hold_ps: f64,
    /// Width of the transient generated at a struck cell output.
    pub initial_duration_ps: f64,
    /// Duration lost per traversed logic level (electrical attenuation).
    pub attenuation_ps: f64,
    /// Pulses narrower than this can no longer propagate.
    pub min_duration_ps: f64,
}

impl Default for TransientConfig {
    fn default() -> Self {
        Self {
            clock_period_ps: 1200.0,
            setup_ps: 80.0,
            hold_ps: 50.0,
            initial_duration_ps: 300.0,
            attenuation_ps: 8.0,
            min_duration_ps: 12.0,
        }
    }
}

/// A voltage pulse at a gate output: `[start, start + duration]` ps after
/// the launching clock edge.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Pulse {
    start: f64,
    duration: f64,
}

/// The result of one strike simulation.
#[derive(Debug, Clone, Default)]
pub struct StrikeOutcome {
    /// DFFs whose *next-state* bit is flipped by a latched transient.
    pub latched_dffs: Vec<GateId>,
    /// DFFs struck directly (SEU): their stored bit flips.
    pub upset_dffs: Vec<GateId>,
    /// Number of combinational gates that carried a propagating pulse.
    pub pulses_propagated: usize,
}

impl StrikeOutcome {
    /// All registers in error at the end of the injection cycle
    /// (deduplicated, sorted): direct upsets plus latched transients.
    pub fn faulty_registers(&self) -> Vec<GateId> {
        let mut all: Vec<GateId> = self
            .latched_dffs
            .iter()
            .chain(&self.upset_dffs)
            .copied()
            .collect();
        all.sort_unstable();
        all.dedup();
        all
    }

    /// Whether the strike was completely masked (no register in error).
    pub fn is_masked(&self) -> bool {
        self.latched_dffs.is_empty() && self.upset_dffs.is_empty()
    }
}

/// Transient simulator bound to one netlist (topology cached).
#[derive(Debug, Clone)]
pub struct TransientSim {
    topo: Topology,
    config: TransientConfig,
}

impl TransientSim {
    /// Prepare a transient simulator for `netlist` with `config`.
    ///
    /// # Errors
    ///
    /// Fails when the netlist has a combinational loop.
    pub fn new(netlist: &Netlist, config: TransientConfig) -> Result<Self, NetlistError> {
        Ok(Self {
            topo: Topology::new(netlist)?,
            config,
        })
    }

    /// The configured model parameters.
    pub fn config(&self) -> &TransientConfig {
        &self.config
    }

    /// Simulate a strike on `struck` cells during a cycle with stable values
    /// `values` (from [`crate::cycle::CycleSim::eval`] on the same netlist).
    ///
    /// `strike_time_ps` is the moment of the particle hit within the cycle
    /// (0 = launching clock edge). The radiation moment is part of the
    /// attack's intrinsic uncertainty, so callers typically sample it
    /// uniformly over the clock period — pulses only latch when
    /// `strike_time + path delay` lands in the capture window, which is the
    /// latching-window masking of Figure 6(b).
    ///
    /// Struck DFFs become direct upsets (the storage node flips regardless
    /// of timing); struck combinational cells launch transients that are
    /// propagated and checked against the latching window at every reached
    /// flip-flop.
    pub fn strike(
        &self,
        netlist: &Netlist,
        values: &CycleValues,
        struck: &[GateId],
        strike_time_ps: f64,
    ) -> StrikeOutcome {
        let mut outcome = StrikeOutcome::default();
        let mut pulses: Vec<Option<Pulse>> = vec![None; netlist.len()];

        for &g in struck {
            let gate = netlist.gate(g);
            match gate.kind {
                CellKind::Dff => outcome.upset_dffs.push(g),
                CellKind::Input | CellKind::Const(_) | CellKind::Output => {}
                _ => {
                    pulses[g.index()] = Some(Pulse {
                        start: strike_time_ps,
                        duration: self.config.initial_duration_ps,
                    });
                }
            }
        }

        // Propagate in topological order. A struck gate keeps its own pulse
        // (the strike dominates anything arriving from fanins).
        for &id in self.topo.order() {
            if pulses[id.index()].is_some() {
                outcome.pulses_propagated += 1;
                continue;
            }
            let gate = netlist.gate(id);
            let pulsing: Vec<usize> = gate
                .fanin
                .iter()
                .enumerate()
                .filter(|(_, f)| pulses[f.index()].is_some())
                .map(|(i, _)| i)
                .collect();
            if pulsing.is_empty() {
                continue;
            }
            // Logical masking: does flipping the pulsing inputs flip the
            // output under the cycle's stable side-input values?
            let mut ins: Vec<bool> = gate
                .fanin
                .iter()
                .map(|f| values.value(*f))
                .collect();
            let nominal = gate.kind.eval(&ins);
            for &i in &pulsing {
                ins[i] = !ins[i];
            }
            let flipped = gate.kind.eval(&ins);
            if flipped == nominal {
                continue;
            }
            // Electrical masking: the pulse narrows at each level.
            let max_duration = pulsing
                .iter()
                .map(|&i| pulses[gate.fanin[i].index()].unwrap().duration)
                .fold(0.0f64, f64::max);
            let duration = max_duration - self.config.attenuation_ps;
            if duration < self.config.min_duration_ps {
                continue;
            }
            let start = pulsing
                .iter()
                .map(|&i| pulses[gate.fanin[i].index()].unwrap().start)
                .fold(0.0f64, f64::max)
                + gate.kind.delay_ps();
            pulses[id.index()] = Some(Pulse { start, duration });
            outcome.pulses_propagated += 1;
        }

        // Latching-window masking at each DFF's D pin.
        let window_lo = self.config.clock_period_ps - self.config.setup_ps;
        let window_hi = self.config.clock_period_ps + self.config.hold_ps;
        for &dff in netlist.dffs() {
            let d = netlist.gate(dff).fanin[0];
            if let Some(p) = pulses[d.index()] {
                let pulse_lo = p.start;
                let pulse_hi = p.start + p.duration;
                if pulse_lo <= window_hi && pulse_hi >= window_lo {
                    outcome.latched_dffs.push(dff);
                }
            }
        }
        outcome.latched_dffs.sort_unstable();
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::CycleSim;

    /// Config where any pulse reaching a D pin latches (huge window, no
    /// attenuation) so tests can focus on one mechanism at a time.
    fn permissive() -> TransientConfig {
        TransientConfig {
            clock_period_ps: 1_000.0,
            setup_ps: 1_000.0,
            hold_ps: 1_000.0,
            initial_duration_ps: 500.0,
            attenuation_ps: 0.0,
            min_duration_ps: 1.0,
        }
    }

    /// buf chain: a -> g -> dff
    fn chain_to_dff() -> (Netlist, GateId, GateId) {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let g = n.add_gate(CellKind::Buf, &[a]);
        let q = n.add_dff("q", g);
        (n, g, q)
    }

    #[test]
    fn pulse_reaches_and_latches() {
        let (n, g, q) = chain_to_dff();
        let sim = CycleSim::new(&n).unwrap();
        let cv = sim.eval(&n, &[false], &[false]);
        let ts = TransientSim::new(&n, permissive()).unwrap();
        let out = ts.strike(&n, &cv, &[g], 0.0);
        assert_eq!(out.latched_dffs, vec![q]);
        assert!(out.upset_dffs.is_empty());
        assert!(!out.is_masked());
        assert_eq!(out.faulty_registers(), vec![q]);
    }

    #[test]
    fn struck_register_is_direct_upset() {
        let (n, _, q) = chain_to_dff();
        let sim = CycleSim::new(&n).unwrap();
        let cv = sim.eval(&n, &[false], &[false]);
        let ts = TransientSim::new(&n, permissive()).unwrap();
        let out = ts.strike(&n, &cv, &[q], 0.0);
        assert_eq!(out.upset_dffs, vec![q]);
        assert!(out.latched_dffs.is_empty());
    }

    #[test]
    fn logical_masking_blocks_unsensitized_path() {
        // and(a, b) with b = 0: a pulse on the a-side buf is masked.
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let b = n.add_input("b");
        let buf = n.add_gate(CellKind::Buf, &[a]);
        let g = n.add_gate(CellKind::And, &[buf, b]);
        let q = n.add_dff("q", g);
        let _ = q;
        let sim = CycleSim::new(&n).unwrap();
        let ts = TransientSim::new(&n, permissive()).unwrap();

        let cv = sim.eval(&n, &[false], &[true, false]); // b = 0 blocks
        assert!(ts.strike(&n, &cv, &[buf], 0.0).is_masked());

        let cv = sim.eval(&n, &[false], &[true, true]); // b = 1 sensitizes
        assert!(!ts.strike(&n, &cv, &[buf], 0.0).is_masked());
    }

    #[test]
    fn electrical_masking_kills_narrow_pulses() {
        // A long buffer chain with aggressive attenuation.
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let mut prev = a;
        let mut first = None;
        for _ in 0..10 {
            prev = n.add_gate(CellKind::Buf, &[prev]);
            first.get_or_insert(prev);
        }
        n.add_dff("q", prev);
        let sim = CycleSim::new(&n).unwrap();
        let cv = sim.eval(&n, &[false], &[false]);
        let cfg = TransientConfig {
            initial_duration_ps: 50.0,
            attenuation_ps: 10.0,
            min_duration_ps: 20.0,
            ..permissive()
        };
        let ts = TransientSim::new(&n, cfg).unwrap();
        // Struck at the head of the chain: dies after ~3 levels.
        let out = ts.strike(&n, &cv, &[first.unwrap()], 0.0);
        assert!(out.is_masked());
        // Struck adjacent to the flop: survives.
        let out = ts.strike(&n, &cv, &[prev], 0.0);
        assert!(!out.is_masked());
    }

    #[test]
    fn latching_window_masks_early_pulses() {
        // Pulse at t≈25..75 ps; window at [950, 1030]: no overlap -> masked.
        let (n, g, _) = chain_to_dff();
        let sim = CycleSim::new(&n).unwrap();
        let cv = sim.eval(&n, &[false], &[false]);
        let cfg = TransientConfig {
            clock_period_ps: 1_000.0,
            setup_ps: 50.0,
            hold_ps: 30.0,
            initial_duration_ps: 50.0,
            attenuation_ps: 0.0,
            min_duration_ps: 1.0,
        };
        let ts = TransientSim::new(&n, cfg).unwrap();
        assert!(ts.strike(&n, &cv, &[g], 0.0).is_masked());

        // A wide pulse spanning into the window latches.
        let cfg_wide = TransientConfig {
            initial_duration_ps: 2_000.0,
            ..cfg
        };
        let ts = TransientSim::new(&n, cfg_wide).unwrap();
        assert!(!ts.strike(&n, &cv, &[g], 0.0).is_masked());
    }

    #[test]
    fn multi_cell_strike_can_fan_to_several_registers() {
        // One struck gate fans out to two flops; also strike a third flop.
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let g = n.add_gate(CellKind::Not, &[a]);
        let q1 = n.add_dff("q1", g);
        let q2 = n.add_dff("q2", g);
        let q3 = n.add_dff("q3", a);
        let sim = CycleSim::new(&n).unwrap();
        let cv = sim.eval(&n, &[false; 3], &[false]);
        let ts = TransientSim::new(&n, permissive()).unwrap();
        let out = ts.strike(&n, &cv, &[g, q3], 0.0);
        assert_eq!(out.latched_dffs, vec![q1, q2]);
        assert_eq!(out.upset_dffs, vec![q3]);
        assert_eq!(out.faulty_registers(), vec![q1, q2, q3]);
    }

    #[test]
    fn xor_always_sensitizes() {
        // XOR propagates regardless of the side input value.
        for side in [false, true] {
            let mut n = Netlist::new();
            let a = n.add_input("a");
            let b = n.add_input("b");
            let buf = n.add_gate(CellKind::Buf, &[a]);
            let g = n.add_gate(CellKind::Xor, &[buf, b]);
            n.add_dff("q", g);
            let sim = CycleSim::new(&n).unwrap();
            let cv = sim.eval(&n, &[false], &[false, side]);
            let ts = TransientSim::new(&n, permissive()).unwrap();
            assert!(!ts.strike(&n, &cv, &[buf], 0.0).is_masked(), "side {side}");
        }
    }

    #[test]
    fn strike_on_input_or_output_marker_is_ignored() {
        let (n, _, _) = chain_to_dff();
        let sim = CycleSim::new(&n).unwrap();
        let cv = sim.eval(&n, &[false], &[false]);
        let ts = TransientSim::new(&n, permissive()).unwrap();
        let a = n.inputs()[0];
        assert!(ts.strike(&n, &cv, &[a], 0.0).is_masked());
    }

    #[test]
    fn reconvergent_pulses_cancel_logically() {
        // a -> buf -> (x, y); xor(x_path, y_path) reconverges: flipping both
        // inputs of the XOR leaves the output unchanged -> masked.
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let buf = n.add_gate(CellKind::Buf, &[a]);
        let p1 = n.add_gate(CellKind::Buf, &[buf]);
        let p2 = n.add_gate(CellKind::Buf, &[buf]);
        let g = n.add_gate(CellKind::Xor, &[p1, p2]);
        n.add_dff("q", g);
        let sim = CycleSim::new(&n).unwrap();
        let cv = sim.eval(&n, &[false], &[true]);
        let ts = TransientSim::new(&n, permissive()).unwrap();
        let out = ts.strike(&n, &cv, &[buf], 0.0);
        assert!(out.is_masked(), "reconvergent flip must cancel in XOR");
    }
}
