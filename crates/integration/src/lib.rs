//! Carrier crate for the /tests integration suites (see repository tests/).
