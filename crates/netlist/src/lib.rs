//! Gate-level netlist substrate for the `xlmc` fault-attack evaluation framework.
//!
//! This crate provides everything the cross-level Monte Carlo flow of
//! Li et al., *"Cross-level Monte Carlo Framework for System Vulnerability
//! Evaluation against Fault Attack"* (DAC 2017) needs from a gate-level
//! netlist:
//!
//! * a compact gate graph with a small standard-cell library ([`CellKind`]),
//! * structural construction combinators for datapath logic
//!   ([`builder::BusBuilder`]: comparators, adders, reduction trees, muxes),
//! * sequential-aware graph analysis: topological ordering ([`Topology`]),
//!   time-frame fanin/fanout cones ([`cones`]) and explicit unrolling
//!   ([`unroll`]),
//! * a connectivity-aware grid [`placement`] with radius queries used by the
//!   radiation spot model, and
//! * a per-cell area model used by the hardening overhead study.
//!
//! # Example
//!
//! Build a 2-bit equality comparator feeding a register and query its fanin
//! cone:
//!
//! ```
//! use xlmc_netlist::{Netlist, Topology, cones};
//!
//! # fn main() -> Result<(), xlmc_netlist::NetlistError> {
//! let mut n = Netlist::new();
//! let a0 = n.add_input("a0");
//! let a1 = n.add_input("a1");
//! let b0 = n.add_input("b0");
//! let b1 = n.add_input("b1");
//! let e0 = n.add_gate(xlmc_netlist::CellKind::Xnor, &[a0, b0]);
//! let e1 = n.add_gate(xlmc_netlist::CellKind::Xnor, &[a1, b1]);
//! let eq = n.add_gate(xlmc_netlist::CellKind::And, &[e0, e1]);
//! let q = n.add_dff("eq_q", eq);
//! n.add_output("eq_out", q);
//!
//! let topo = Topology::new(&n)?;
//! // Frame 0 holds the register itself; frame 1 its D-pin logic.
//! let cone = cones::fanin_cone(&n, q, 1);
//! assert!(cone.frame(0).contains(q));
//! assert!(cone.frame(1).contains(eq));
//! # Ok(())
//! # }
//! ```

pub mod builder;
pub mod cell;
pub mod cones;
pub mod netlist;
pub mod placement;
pub mod program;
pub mod topo;
pub mod unroll;
pub mod verilog;

pub use builder::BusBuilder;
pub use cell::CellKind;
pub use cones::{Cone, ConeSet};
pub use netlist::{Gate, GateId, Netlist, NetlistError, NetlistStats};
pub use placement::{Placement, Point};
pub use program::{GateProgram, NetClass, Opcode};
pub use topo::Topology;
pub use unroll::{UnrolledNetlist, UnrolledRef};
pub use verilog::{from_verilog, to_verilog};
