//! Connectivity-aware grid placement and radius queries.
//!
//! The radiation spot model of the paper selects a center gate `g` and a
//! radius `r`; every cell inside the radiated disc suffers a voltage
//! transient (following Fazeli et al.'s multiple-event-transient model,
//! paper ref. \[18\]). That only makes sense on a *placed* netlist, so this
//! module provides a deterministic stand-in for a physical placement: cells
//! are laid out on a unit-pitch square grid in breadth-first order from the
//! primary inputs, which keeps logically adjacent cells physically close —
//! the property the spot model actually depends on.

use crate::cell::CellKind;
use crate::netlist::{GateId, Netlist};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A cell location in placement units (grid pitch = 1.0).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Euclidean distance to another point.
    pub fn distance(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

/// A placed netlist: one grid location per *placeable* cell.
///
/// Placeable cells are combinational gates and DFFs; sources, constants and
/// output markers occupy no silicon and have no location.
#[derive(Debug, Clone)]
pub struct Placement {
    positions: Vec<Option<Point>>,
    placeable: Vec<GateId>,
    side: usize,
    /// Reverse map of the grid: `grid[row * side + col]` is the cell placed
    /// at that lattice point (cells sit on exact integer coordinates), so a
    /// radius query scans only the disc's bounding box instead of every
    /// placeable cell.
    grid: Vec<Option<GateId>>,
}

impl Placement {
    /// Place `netlist` on a square grid in BFS order from the primary
    /// inputs. Deterministic: the same netlist always yields the same
    /// placement.
    pub fn new(netlist: &Netlist) -> Self {
        let placeable: Vec<GateId> = netlist
            .iter()
            .filter(|(_, g)| {
                (g.kind.is_combinational() && g.kind != CellKind::Output) || g.kind == CellKind::Dff
            })
            .map(|(id, _)| id)
            .collect();
        let side = (placeable.len() as f64).sqrt().ceil() as usize;
        let side = side.max(1);

        // BFS from inputs over fanout edges gives a visiting order where
        // connected cells end up near each other on the snake-ordered grid.
        let fanouts = netlist.fanouts();
        let mut visited = vec![false; netlist.len()];
        let mut order: Vec<GateId> = Vec::with_capacity(placeable.len());
        // Seed from the primary inputs only: flip-flops are visited through
        // their D-pin logic, which keeps each register physically next to
        // the cone that drives it (as a real placer would).
        let mut queue: VecDeque<GateId> = netlist.inputs().iter().copied().collect();
        while let Some(id) = queue.pop_front() {
            if visited[id.index()] {
                continue;
            }
            visited[id.index()] = true;
            let gate = netlist.gate(id);
            if (gate.kind.is_combinational() && gate.kind != CellKind::Output)
                || gate.kind == CellKind::Dff
            {
                order.push(id);
            }
            for &c in fanouts.of(id) {
                if !visited[c.index()] {
                    queue.push_back(c);
                }
            }
        }
        // Anything unreached (e.g. constant-driven logic) goes at the end,
        // in id order, so coverage is total.
        for &id in &placeable {
            if !visited[id.index()] {
                order.push(id);
            }
        }

        let mut positions = vec![None; netlist.len()];
        let rows = order.len().div_ceil(side).max(1);
        let mut grid = vec![None; rows * side];
        for (slot, &id) in order.iter().enumerate() {
            let row = slot / side;
            let col_raw = slot % side;
            // Snake rows so consecutive slots stay adjacent across row wraps.
            let col = if row.is_multiple_of(2) {
                col_raw
            } else {
                side - 1 - col_raw
            };
            positions[id.index()] = Some(Point {
                x: col as f64,
                y: row as f64,
            });
            grid[row * side + col] = Some(id);
        }
        Self {
            positions,
            placeable,
            side,
            grid,
        }
    }

    /// The location of a cell, `None` for non-placeable gates.
    pub fn position(&self, id: GateId) -> Option<Point> {
        self.positions.get(id.index()).copied().flatten()
    }

    /// All placeable cells (combinational gates and DFFs), in id order.
    pub fn placeable(&self) -> &[GateId] {
        &self.placeable
    }

    /// Grid side length in placement units.
    pub fn side(&self) -> usize {
        self.side
    }

    /// All placed cells within Euclidean distance `radius` of the location
    /// of `center` (inclusive; always contains `center` itself when placed).
    pub fn cells_within(&self, center: GateId, radius: f64) -> Vec<GateId> {
        let mut out = Vec::new();
        self.cells_within_into(center, radius, &mut out);
        out
    }

    /// [`Placement::cells_within`] into a caller-owned buffer (cleared
    /// first).
    pub fn cells_within_into(&self, center: GateId, radius: f64, out: &mut Vec<GateId>) {
        out.clear();
        let Some(c) = self.position(center) else {
            return;
        };
        // Scan the disc's bounding box on the lattice; the exact Euclidean
        // predicate below keeps the result set identical to a full scan.
        let r = radius.max(0.0);
        let rows = self.grid.len() / self.side;
        let row_lo = ((c.y - r).ceil().max(0.0)) as usize;
        let row_hi = ((c.y + r).floor() as usize).min(rows.saturating_sub(1));
        let col_lo = ((c.x - r).ceil().max(0.0)) as usize;
        let col_hi = ((c.x + r).floor() as usize).min(self.side - 1);
        for row in row_lo..=row_hi {
            for col in col_lo..=col_hi {
                if let Some(g) = self.grid[row * self.side + col] {
                    let p = Point {
                        x: col as f64,
                        y: row as f64,
                    };
                    if p.distance(c) <= radius {
                        out.push(g);
                    }
                }
            }
        }
        // The linear scan this replaces returned cells in id order.
        out.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(len: usize) -> Netlist {
        let mut n = Netlist::new();
        let mut prev = n.add_input("a");
        for _ in 0..len {
            prev = n.add_gate(CellKind::Not, &[prev]);
        }
        n.add_output("y", prev);
        n
    }

    #[test]
    fn every_placeable_cell_gets_a_position() {
        let n = chain(37);
        let p = Placement::new(&n);
        assert_eq!(p.placeable().len(), 37);
        for &g in p.placeable() {
            assert!(p.position(g).is_some(), "{g} unplaced");
        }
    }

    #[test]
    fn non_placeable_cells_have_no_position() {
        let n = chain(3);
        let p = Placement::new(&n);
        let input = n.inputs()[0];
        let output = n.outputs()[0];
        assert!(p.position(input).is_none());
        assert!(p.position(output).is_none());
    }

    #[test]
    fn positions_are_unique() {
        let n = chain(50);
        let p = Placement::new(&n);
        let mut seen = std::collections::HashSet::new();
        for &g in p.placeable() {
            let pt = p.position(g).unwrap();
            assert!(seen.insert((pt.x as i64, pt.y as i64)), "overlap at {pt:?}");
        }
    }

    #[test]
    fn connected_cells_are_adjacent_in_a_chain() {
        // In a pure chain the BFS order is the chain order, so consecutive
        // gates must be at distance ~1 (or a row wrap's diagonal).
        let n = chain(20);
        let p = Placement::new(&n);
        let gates = p.placeable();
        for w in gates.windows(2) {
            let a = p.position(w[0]).unwrap();
            let b = p.position(w[1]).unwrap();
            assert!(a.distance(b) <= 2.0_f64.sqrt() + 1e-9);
        }
    }

    #[test]
    fn radius_query_contains_center_and_grows() {
        let n = chain(25);
        let p = Placement::new(&n);
        let center = p.placeable()[12];
        let near = p.cells_within(center, 0.0);
        assert_eq!(near, vec![center]);
        let r1 = p.cells_within(center, 1.0);
        let r2 = p.cells_within(center, 2.5);
        assert!(r1.len() > 1);
        assert!(r2.len() > r1.len());
        for g in &r1 {
            assert!(r2.contains(g));
        }
    }

    #[test]
    fn grid_query_matches_linear_scan() {
        // The bucketed query must return exactly what the original full
        // scan returned — same cells, same (id) order — for radii around
        // lattice-distance boundaries.
        let n = chain(61);
        let p = Placement::new(&n);
        for &center in p.placeable().iter().step_by(7) {
            let c = p.position(center).unwrap();
            for radius in [0.0, 0.5, 1.0, std::f64::consts::SQRT_2, 2.0, 2.9, 100.0] {
                let mut linear: Vec<GateId> = p
                    .placeable()
                    .iter()
                    .copied()
                    .filter(|&g| {
                        p.position(g)
                            .map(|q| q.distance(c) <= radius)
                            .unwrap_or(false)
                    })
                    .collect();
                linear.sort_unstable();
                assert_eq!(
                    p.cells_within(center, radius),
                    linear,
                    "center {center} radius {radius}"
                );
            }
        }
    }

    #[test]
    fn radius_query_on_unplaced_gate_is_empty() {
        let n = chain(4);
        let p = Placement::new(&n);
        assert!(p.cells_within(n.inputs()[0], 10.0).is_empty());
    }

    #[test]
    fn placement_is_deterministic() {
        let n = chain(30);
        let p1 = Placement::new(&n);
        let p2 = Placement::new(&n);
        for &g in p1.placeable() {
            assert_eq!(p1.position(g).unwrap(), p2.position(g).unwrap());
        }
    }

    #[test]
    fn dff_only_logic_is_reached() {
        // A self-looped counter bit with no PI connectivity.
        let mut n = Netlist::new();
        let q_id = GateId(1);
        let inv = n.add_gate(CellKind::Not, &[q_id]);
        let q = n.add_dff("q", inv);
        assert_eq!(q, q_id);
        let p = Placement::new(&n);
        assert!(p.position(inv).is_some());
        assert!(p.position(q).is_some());
    }

    #[test]
    fn distance_is_euclidean() {
        let a = Point { x: 0.0, y: 0.0 };
        let b = Point { x: 3.0, y: 4.0 };
        assert!((a.distance(b) - 5.0).abs() < 1e-12);
    }
}
