//! Structural construction combinators for multi-bit datapath logic.
//!
//! [`BusBuilder`] wraps a mutable [`Netlist`] and provides the word-level
//! primitives the MPU elaboration needs: multi-bit inputs and registers,
//! equality/magnitude comparators, reduction trees, muxes and adders. Every
//! combinator lowers to plain library cells so the produced netlist is an
//! ordinary gate graph.

use crate::cell::CellKind;
use crate::netlist::{GateId, Netlist};

/// A little-endian bus: `bits[0]` is the least significant bit.
pub type Bus = Vec<GateId>;

/// Word-level construction helper over a [`Netlist`].
///
/// # Example
///
/// ```
/// use xlmc_netlist::{BusBuilder, Netlist};
///
/// let mut n = Netlist::new();
/// let mut b = BusBuilder::new(&mut n);
/// let a = b.input_bus("a", 8);
/// let c = b.const_bus(0x5a, 8);
/// let eq = b.eq(&a, &c);
/// b.netlist().add_output("match", eq);
/// ```
pub struct BusBuilder<'a> {
    netlist: &'a mut Netlist,
}

impl<'a> BusBuilder<'a> {
    /// Wrap a netlist for word-level construction.
    pub fn new(netlist: &'a mut Netlist) -> Self {
        Self { netlist }
    }

    /// Access the underlying netlist.
    pub fn netlist(&mut self) -> &mut Netlist {
        self.netlist
    }

    /// Add a `width`-bit primary input bus named `name[i]`.
    pub fn input_bus(&mut self, name: &str, width: usize) -> Bus {
        (0..width)
            .map(|i| self.netlist.add_input(format!("{name}[{i}]")))
            .collect()
    }

    /// A constant bus holding `value` (little-endian, low `width` bits).
    pub fn const_bus(&mut self, value: u64, width: usize) -> Bus {
        (0..width)
            .map(|i| self.netlist.add_const((value >> i) & 1 == 1))
            .collect()
    }

    /// Bitwise NOT of a bus.
    pub fn not(&mut self, a: &[GateId]) -> Bus {
        a.iter()
            .map(|&g| self.netlist.add_gate(CellKind::Not, &[g]))
            .collect()
    }

    /// Bitwise binary op over two equal-width buses.
    ///
    /// # Panics
    ///
    /// Panics when the widths differ.
    pub fn bitwise(&mut self, kind: CellKind, a: &[GateId], b: &[GateId]) -> Bus {
        assert_eq!(a.len(), b.len(), "bitwise width mismatch");
        a.iter()
            .zip(b)
            .map(|(&x, &y)| self.netlist.add_gate(kind, &[x, y]))
            .collect()
    }

    /// AND-reduce a set of signals to one (returns a constant-1 for empty).
    pub fn and_reduce(&mut self, xs: &[GateId]) -> GateId {
        self.reduce(CellKind::And, xs, true)
    }

    /// OR-reduce a set of signals to one (returns a constant-0 for empty).
    pub fn or_reduce(&mut self, xs: &[GateId]) -> GateId {
        self.reduce(CellKind::Or, xs, false)
    }

    fn reduce(&mut self, kind: CellKind, xs: &[GateId], empty: bool) -> GateId {
        match xs.len() {
            0 => self.netlist.add_const(empty),
            1 => xs[0],
            _ => {
                // Balanced tree of 2-input gates keeps depth logarithmic,
                // matching what a synthesis tool would emit.
                let mut layer: Vec<GateId> = xs.to_vec();
                while layer.len() > 1 {
                    let mut next = Vec::with_capacity(layer.len().div_ceil(2));
                    for pair in layer.chunks(2) {
                        if pair.len() == 2 {
                            next.push(self.netlist.add_gate(kind, pair));
                        } else {
                            next.push(pair[0]);
                        }
                    }
                    layer = next;
                }
                layer[0]
            }
        }
    }

    /// Equality comparator: high when `a == b` bitwise.
    ///
    /// # Panics
    ///
    /// Panics when the widths differ.
    pub fn eq(&mut self, a: &[GateId], b: &[GateId]) -> GateId {
        let eqs = self.bitwise(CellKind::Xnor, a, b);
        self.and_reduce(&eqs)
    }

    /// Unsigned `a >= b` via a ripple borrow chain.
    ///
    /// # Panics
    ///
    /// Panics when the widths differ.
    pub fn uge(&mut self, a: &[GateId], b: &[GateId]) -> GateId {
        assert_eq!(a.len(), b.len(), "uge width mismatch");
        // a >= b  <=>  no borrow out of a - b.
        // borrow_{i+1} = (!a_i & b_i) | (!(a_i ^ b_i) & borrow_i)
        let mut borrow = self.netlist.add_const(false);
        for (&ai, &bi) in a.iter().zip(b) {
            let na = self.netlist.add_gate(CellKind::Not, &[ai]);
            let t1 = self.netlist.add_gate(CellKind::And, &[na, bi]);
            let x = self.netlist.add_gate(CellKind::Xnor, &[ai, bi]);
            let t2 = self.netlist.add_gate(CellKind::And, &[x, borrow]);
            borrow = self.netlist.add_gate(CellKind::Or, &[t1, t2]);
        }
        self.netlist.add_gate(CellKind::Not, &[borrow])
    }

    /// Unsigned `a <= b` (convenience wrapper over [`BusBuilder::uge`]).
    pub fn ule(&mut self, a: &[GateId], b: &[GateId]) -> GateId {
        self.uge(b, a)
    }

    /// 2:1 mux over buses: selects `a` when `sel` is low, `b` when high.
    ///
    /// # Panics
    ///
    /// Panics when the widths differ.
    pub fn mux(&mut self, sel: GateId, a: &[GateId], b: &[GateId]) -> Bus {
        assert_eq!(a.len(), b.len(), "mux width mismatch");
        a.iter()
            .zip(b)
            .map(|(&x, &y)| self.netlist.add_gate(CellKind::Mux, &[sel, x, y]))
            .collect()
    }

    /// Ripple-carry adder; returns `width` sum bits (carry-out discarded).
    ///
    /// # Panics
    ///
    /// Panics when the widths differ.
    pub fn add(&mut self, a: &[GateId], b: &[GateId]) -> Bus {
        assert_eq!(a.len(), b.len(), "add width mismatch");
        let mut carry = self.netlist.add_const(false);
        let mut sum = Vec::with_capacity(a.len());
        for (&ai, &bi) in a.iter().zip(b) {
            let x = self.netlist.add_gate(CellKind::Xor, &[ai, bi]);
            sum.push(self.netlist.add_gate(CellKind::Xor, &[x, carry]));
            let c1 = self.netlist.add_gate(CellKind::And, &[ai, bi]);
            let c2 = self.netlist.add_gate(CellKind::And, &[x, carry]);
            carry = self.netlist.add_gate(CellKind::Or, &[c1, c2]);
        }
        sum
    }

    /// A register bank: `width` DFFs named `name[i]` that capture `d` every
    /// cycle.
    ///
    /// # Panics
    ///
    /// Panics when `d.len() != width`.
    pub fn dff_bus(&mut self, name: &str, d: &[GateId]) -> Bus {
        d.iter()
            .enumerate()
            .map(|(i, &di)| self.netlist.add_dff(format!("{name}[{i}]"), di))
            .collect()
    }

    /// A register bank with write enable: each bit holds its value when `en`
    /// is low and captures `d` when `en` is high. Lowers to a mux in front of
    /// each DFF, with the mux fed back from the DFF output.
    pub fn dff_bus_en(&mut self, name: &str, d: &[GateId], en: GateId) -> Bus {
        d.iter()
            .enumerate()
            .map(|(i, &di)| {
                // Create the DFF first with a placeholder D, then wire the
                // hold mux that references the DFF output back to its D pin.
                let placeholder = self.netlist.add_const(false);
                let q = self.netlist.add_dff(format!("{name}[{i}]"), placeholder);
                let hold = self.netlist.add_gate(CellKind::Mux, &[en, q, di]);
                self.netlist.set_fanin(q, vec![hold]);
                q
            })
            .collect()
    }

    /// Expose a bus as named primary outputs `name[i]`.
    pub fn output_bus(&mut self, name: &str, bus: &[GateId]) -> Bus {
        bus.iter()
            .enumerate()
            .map(|(i, &g)| self.netlist.add_output(format!("{name}[{i}]"), g))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo::Topology;

    /// Evaluate a pure-combinational netlist built over input buses.
    fn eval(netlist: &Netlist, assign: &dyn Fn(&str) -> bool) -> Vec<(String, bool)> {
        let topo = Topology::new(netlist).unwrap();
        let mut values = vec![false; netlist.len()];
        for (id, gate) in netlist.iter() {
            match gate.kind {
                CellKind::Input => values[id.index()] = assign(gate.name.as_deref().unwrap()),
                CellKind::Const(v) => values[id.index()] = v,
                _ => {}
            }
        }
        for &id in topo.order() {
            let gate = netlist.gate(id);
            let ins: Vec<bool> = gate.fanin.iter().map(|f| values[f.index()]).collect();
            values[id.index()] = gate.kind.eval(&ins);
        }
        netlist
            .outputs()
            .iter()
            .map(|&o| (netlist.name_of(o).unwrap().to_owned(), values[o.index()]))
            .collect()
    }

    fn assign_bus(name: &str, value: u64) -> impl Fn(&str) -> bool + '_ {
        move |pin: &str| {
            let (base, idx) = pin.split_once('[').unwrap();
            assert_eq!(base, name);
            let idx: u32 = idx.trim_end_matches(']').parse().unwrap();
            (value >> idx) & 1 == 1
        }
    }

    #[test]
    fn eq_matches_semantics() {
        for (a_val, c_val, expect) in [(0x5au64, 0x5au64, true), (0x5a, 0x5b, false)] {
            let mut n = Netlist::new();
            let mut b = BusBuilder::new(&mut n);
            let a = b.input_bus("a", 8);
            let c = b.const_bus(c_val, 8);
            let eq = b.eq(&a, &c);
            n.add_output("y", eq);
            let out = eval(&n, &assign_bus("a", a_val));
            assert_eq!(out[0].1, expect, "{a_val:#x} == {c_val:#x}");
        }
    }

    #[test]
    fn uge_exhaustive_4bit() {
        for av in 0..16u64 {
            for bv in 0..16u64 {
                let mut n = Netlist::new();
                let mut b = BusBuilder::new(&mut n);
                let a = b.input_bus("a", 4);
                let c = b.const_bus(bv, 4);
                let ge = b.uge(&a, &c);
                n.add_output("y", ge);
                let out = eval(&n, &assign_bus("a", av));
                assert_eq!(out[0].1, av >= bv, "{av} >= {bv}");
            }
        }
    }

    #[test]
    fn ule_is_flipped_uge() {
        for (av, bv) in [(3u64, 7u64), (7, 3), (5, 5)] {
            let mut n = Netlist::new();
            let mut b = BusBuilder::new(&mut n);
            let a = b.input_bus("a", 4);
            let c = b.const_bus(bv, 4);
            let le = b.ule(&a, &c);
            n.add_output("y", le);
            let out = eval(&n, &assign_bus("a", av));
            assert_eq!(out[0].1, av <= bv, "{av} <= {bv}");
        }
    }

    #[test]
    fn add_exhaustive_4bit() {
        for av in 0..16u64 {
            for bv in 0..16u64 {
                let mut n = Netlist::new();
                let mut b = BusBuilder::new(&mut n);
                let a = b.input_bus("a", 4);
                let c = b.const_bus(bv, 4);
                let s = b.add(&a, &c);
                b.output_bus("s", &s);
                let out = eval(&n, &assign_bus("a", av));
                let got: u64 = out
                    .iter()
                    .enumerate()
                    .map(|(i, (_, v))| (*v as u64) << i)
                    .sum();
                assert_eq!(got, (av + bv) & 0xf, "{av} + {bv}");
            }
        }
    }

    #[test]
    fn mux_selects_bus() {
        for sel in [false, true] {
            let mut n = Netlist::new();
            let mut b = BusBuilder::new(&mut n);
            let s = b.netlist().add_input("sel");
            let a = b.const_bus(0b0011, 4);
            let c = b.const_bus(0b1100, 4);
            let m = b.mux(s, &a, &c);
            b.output_bus("m", &m);
            let out = eval(&n, &|pin| {
                assert_eq!(pin, "sel");
                sel
            });
            let got: u64 = out
                .iter()
                .enumerate()
                .map(|(i, (_, v))| (*v as u64) << i)
                .sum();
            assert_eq!(got, if sel { 0b1100 } else { 0b0011 });
        }
    }

    #[test]
    fn reduce_trees_handle_degenerate_sizes() {
        let mut n = Netlist::new();
        let mut b = BusBuilder::new(&mut n);
        let empty_and = b.and_reduce(&[]);
        let empty_or = b.or_reduce(&[]);
        assert_eq!(n.gate(empty_and).kind, CellKind::Const(true));
        assert_eq!(n.gate(empty_or).kind, CellKind::Const(false));
        let mut b = BusBuilder::new(&mut n);
        let x = b.netlist().add_input("x");
        assert_eq!(b.and_reduce(&[x]), x);
    }

    #[test]
    fn reduce_tree_depth_is_logarithmic() {
        let mut n = Netlist::new();
        let mut b = BusBuilder::new(&mut n);
        let xs = b.input_bus("x", 64);
        let r = b.and_reduce(&xs);
        n.add_output("y", r);
        let topo = Topology::new(&n).unwrap();
        assert!(topo.level(r) <= 7, "depth {} too deep", topo.level(r));
    }

    #[test]
    fn dff_bus_en_holds_and_loads() {
        // Structure check: each bit is dff fed by mux(en, q, d).
        let mut n = Netlist::new();
        let mut b = BusBuilder::new(&mut n);
        let d = b.input_bus("d", 2);
        let en = b.netlist().add_input("en");
        let q = b.dff_bus_en("r", &d, en);
        assert_eq!(q.len(), 2);
        for (i, &qi) in q.iter().enumerate() {
            let gate = n.gate(qi);
            assert_eq!(gate.kind, CellKind::Dff);
            let mux = n.gate(gate.fanin[0]);
            assert_eq!(mux.kind, CellKind::Mux);
            assert_eq!(mux.fanin[0], en);
            assert_eq!(mux.fanin[1], qi, "hold path bit {i}");
            assert_eq!(mux.fanin[2], d[i], "load path bit {i}");
        }
        assert_eq!(n.validate(), Ok(()));
    }

    #[test]
    fn named_buses_resolve() {
        let mut n = Netlist::new();
        let mut b = BusBuilder::new(&mut n);
        b.input_bus("addr", 16);
        assert!(n.find("addr[0]").is_some());
        assert!(n.find("addr[15]").is_some());
        assert!(n.find("addr[16]").is_none());
    }
}
