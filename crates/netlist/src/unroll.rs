//! Explicit time-frame unrolling of a sequential netlist.
//!
//! [`UnrolledNetlist`] materializes `k` frames of a sequential circuit as one
//! purely combinational netlist, the classical construction behind the
//! paper's "unroll the circuit netlist and traverse the unrolled netlist"
//! pre-characterization step. Frame `k-1` is the *earliest* cycle: register
//! states entering it become fresh primary inputs; a DFF in frame `i`
//! becomes a buffer of its D-pin logic from frame `i + 1`.
//!
//! The frame-indexed cone analysis in [`crate::cones`] computes the same
//! structure without materializing it; `UnrolledNetlist` exists so that the
//! two can be cross-checked (see the equivalence tests) and for the worked
//! correlation example of the paper's Figure 3.

use crate::cell::CellKind;
use crate::netlist::{GateId, Netlist};
use std::collections::HashMap;

/// A reference to a gate of the original netlist in a specific frame.
///
/// Frame 0 is the final (latest) cycle; larger frames are earlier cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UnrolledRef {
    /// Gate in the original netlist.
    pub gate: GateId,
    /// Time frame (0 = latest cycle, `k-1` = earliest).
    pub frame: u32,
}

/// A `k`-frame combinational unrolling of a sequential netlist.
#[derive(Debug, Clone)]
pub struct UnrolledNetlist {
    netlist: Netlist,
    frames: u32,
    map: HashMap<UnrolledRef, GateId>,
    initial_state_inputs: Vec<(GateId, GateId)>,
}

impl UnrolledNetlist {
    /// Unroll `source` into `frames` combinational copies.
    ///
    /// # Panics
    ///
    /// Panics when `frames == 0`.
    pub fn new(source: &Netlist, frames: u32) -> Self {
        assert!(frames > 0, "cannot unroll into zero frames");
        let mut netlist = Netlist::new();
        let mut map: HashMap<UnrolledRef, GateId> = HashMap::new();
        let mut initial_state_inputs = Vec::new();

        // Earliest frame first so fanins are already materialized.
        for frame in (0..frames).rev() {
            // Pass 1: sources for this frame. PIs become per-frame inputs;
            // DFFs in the earliest frame become initial-state inputs, in
            // later frames a buffer of the previous frame's D logic (patched
            // in pass 2 once the D driver exists).
            for (id, gate) in source.iter() {
                let uref = UnrolledRef { gate: id, frame };
                match gate.kind {
                    CellKind::Input => {
                        let name = format!("{}@{frame}", gate.name.as_deref().unwrap_or("in"));
                        map.insert(uref, netlist.add_input(name));
                    }
                    CellKind::Const(v) => {
                        map.insert(uref, netlist.add_const(v));
                    }
                    CellKind::Dff if frame == frames - 1 => {
                        let name = format!("{}@init", gate.name.as_deref().unwrap_or("dff"));
                        let init = netlist.add_input(name);
                        map.insert(uref, init);
                        initial_state_inputs.push((id, init));
                    }
                    _ => {}
                }
            }
            // Pass 2: combinational gates and non-initial DFFs, in the
            // source's topological order (a DFF's output in frame f is its D
            // logic of frame f+1, which exists already).
            let topo = crate::topo::Topology::new(source)
                .expect("unroll requires an acyclic source netlist");
            for (id, gate) in source.iter() {
                if gate.kind == CellKind::Dff && frame < frames - 1 {
                    let d = gate.fanin[0];
                    let prev = map[&UnrolledRef {
                        gate: d,
                        frame: frame + 1,
                    }];
                    let name = format!("{}@{frame}", gate.name.as_deref().unwrap_or("dff"));
                    let buf = netlist.add_named_gate(name, CellKind::Buf, &[prev]);
                    map.insert(UnrolledRef { gate: id, frame }, buf);
                }
            }
            for &id in topo.order() {
                let gate = source.gate(id);
                let fanin: Vec<GateId> = gate
                    .fanin
                    .iter()
                    .map(|&f| map[&UnrolledRef { gate: f, frame }])
                    .collect();
                let new_id = match gate.kind {
                    CellKind::Output => {
                        let name = format!("{}@{frame}", gate.name.as_deref().unwrap_or("out"));
                        netlist.add_output(name, fanin[0])
                    }
                    kind => netlist.add_gate(kind, &fanin),
                };
                map.insert(UnrolledRef { gate: id, frame }, new_id);
            }
        }

        Self {
            netlist,
            frames,
            map,
            initial_state_inputs,
        }
    }

    /// The materialized combinational netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Number of frames.
    pub fn frames(&self) -> u32 {
        self.frames
    }

    /// Map a source gate in a frame to its unrolled instance.
    pub fn resolve(&self, gate: GateId, frame: u32) -> Option<GateId> {
        self.map.get(&UnrolledRef { gate, frame }).copied()
    }

    /// The fresh inputs carrying the initial register state, as
    /// `(source_dff, unrolled_input)` pairs.
    pub fn initial_state_inputs(&self) -> &[(GateId, GateId)] {
        &self.initial_state_inputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo::Topology;
    use std::collections::HashMap as Map;

    /// Evaluate a combinational netlist with named input assignments.
    fn eval_comb(netlist: &Netlist, assign: &Map<String, bool>) -> Map<String, bool> {
        let topo = Topology::new(netlist).unwrap();
        let mut values = vec![false; netlist.len()];
        for (id, gate) in netlist.iter() {
            match gate.kind {
                CellKind::Input => {
                    values[id.index()] = *assign
                        .get(gate.name.as_deref().unwrap())
                        .unwrap_or_else(|| panic!("missing input {:?}", gate.name));
                }
                CellKind::Const(v) => values[id.index()] = v,
                _ => {}
            }
        }
        for &id in topo.order() {
            let gate = netlist.gate(id);
            let ins: Vec<bool> = gate.fanin.iter().map(|f| values[f.index()]).collect();
            values[id.index()] = gate.kind.eval(&ins);
        }
        netlist
            .outputs()
            .iter()
            .map(|&o| (netlist.name_of(o).unwrap().to_owned(), values[o.index()]))
            .collect()
    }

    /// Simulate the sequential source for `cycles` cycles.
    fn simulate_seq(
        netlist: &Netlist,
        init: &Map<String, bool>,
        inputs_per_cycle: &[Map<String, bool>],
    ) -> Vec<Map<String, bool>> {
        let topo = Topology::new(netlist).unwrap();
        let mut state: Map<GateId, bool> = netlist
            .dffs()
            .iter()
            .map(|&d| (d, *init.get(netlist.name_of(d).unwrap()).unwrap_or(&false)))
            .collect();
        let mut outs = Vec::new();
        for cycle_inputs in inputs_per_cycle {
            let mut values = vec![false; netlist.len()];
            for (id, gate) in netlist.iter() {
                match gate.kind {
                    CellKind::Input => {
                        values[id.index()] =
                            *cycle_inputs.get(gate.name.as_deref().unwrap()).unwrap()
                    }
                    CellKind::Const(v) => values[id.index()] = v,
                    CellKind::Dff => values[id.index()] = state[&id],
                    _ => {}
                }
            }
            for &id in topo.order() {
                let gate = netlist.gate(id);
                let ins: Vec<bool> = gate.fanin.iter().map(|f| values[f.index()]).collect();
                values[id.index()] = gate.kind.eval(&ins);
            }
            outs.push(
                netlist
                    .outputs()
                    .iter()
                    .map(|&o| (netlist.name_of(o).unwrap().to_owned(), values[o.index()]))
                    .collect(),
            );
            let new_state: Map<GateId, bool> = netlist
                .dffs()
                .iter()
                .map(|&d| (d, values[netlist.gate(d).fanin[0].index()]))
                .collect();
            state = new_state;
        }
        outs
    }

    fn shift_reg() -> Netlist {
        // x -> r0 -> r1 -> y, plus y_comb = x ^ r1
        let mut n = Netlist::new();
        let x = n.add_input("x");
        let r0 = n.add_dff("r0", x);
        let r1 = n.add_dff("r1", r0);
        let xo = n.add_gate(CellKind::Xor, &[x, r1]);
        n.add_output("y", r1);
        n.add_output("yx", xo);
        n
    }

    #[test]
    fn unrolled_structure_has_per_frame_inputs() {
        let n = shift_reg();
        let u = UnrolledNetlist::new(&n, 3);
        let un = u.netlist();
        assert!(un.find("x@0").is_some());
        assert!(un.find("x@2").is_some());
        assert!(un.find("r0@init").is_some());
        assert!(un.find("r1@init").is_some());
        assert_eq!(un.dffs().len(), 0, "unrolled netlist is combinational");
        assert_eq!(un.validate(), Ok(()));
    }

    #[test]
    fn unrolled_matches_sequential_simulation() {
        let n = shift_reg();
        let frames = 3u32;
        let u = UnrolledNetlist::new(&n, frames);

        // Sequential: run 3 cycles with inputs x = [1, 0, 1], init r0=r1=0.
        let xs = [true, false, true];
        let init: Map<String, bool> = [("r0".to_owned(), false), ("r1".to_owned(), false)].into();
        let per_cycle: Vec<Map<String, bool>> =
            xs.iter().map(|&x| [("x".to_owned(), x)].into()).collect();
        let seq_outs = simulate_seq(&n, &init, &per_cycle);

        // Unrolled: frame 2 is cycle 0 (earliest), frame 0 is cycle 2.
        let mut assign: Map<String, bool> = Map::new();
        for (cycle, &x) in xs.iter().enumerate() {
            let frame = frames - 1 - cycle as u32;
            assign.insert(format!("x@{frame}"), x);
        }
        assign.insert("r0@init".into(), false);
        assign.insert("r1@init".into(), false);
        let unrolled_outs = eval_comb(u.netlist(), &assign);

        // Output at frame f corresponds to sequential cycle (frames-1-f).
        for frame in 0..frames {
            let cycle = (frames - 1 - frame) as usize;
            for name in ["y", "yx"] {
                assert_eq!(
                    unrolled_outs[&format!("{name}@{frame}")],
                    seq_outs[cycle][name],
                    "output {name} frame {frame} / cycle {cycle}"
                );
            }
        }
    }

    #[test]
    fn resolve_maps_every_gate_per_frame() {
        let n = shift_reg();
        let u = UnrolledNetlist::new(&n, 2);
        for (id, _) in n.iter() {
            for frame in 0..2 {
                assert!(
                    u.resolve(id, frame).is_some(),
                    "gate {id} frame {frame} missing"
                );
            }
        }
        assert!(u.resolve(GateId(0), 2).is_none());
    }

    #[test]
    fn initial_state_inputs_cover_all_dffs() {
        let n = shift_reg();
        let u = UnrolledNetlist::new(&n, 4);
        assert_eq!(u.initial_state_inputs().len(), n.dffs().len());
        assert_eq!(u.frames(), 4);
    }

    #[test]
    #[should_panic(expected = "zero frames")]
    fn zero_frames_panics() {
        let n = shift_reg();
        let _ = UnrolledNetlist::new(&n, 0);
    }
}
