//! The standard-cell library: gate kinds, evaluation, area and delay models.

use serde::{Deserialize, Serialize};

/// The kind of a gate in the netlist.
///
/// Logic gates (`And`, `Or`, ...) accept two or more fanins; `Buf` and `Not`
/// take exactly one; [`CellKind::Mux`] takes exactly three fanins ordered
/// `[sel, a, b]` and selects `a` when `sel` is low, `b` when `sel` is high.
/// [`CellKind::Dff`] is the sequential boundary: its single fanin is the `D`
/// pin, and its "output value" during a cycle is the register state latched
/// at the previous clock edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellKind {
    /// Primary input; no fanins.
    Input,
    /// Constant driver; no fanins.
    Const(bool),
    /// Buffer (identity); one fanin.
    Buf,
    /// Inverter; one fanin.
    Not,
    /// N-ary AND, N >= 2.
    And,
    /// N-ary OR, N >= 2.
    Or,
    /// N-ary NAND, N >= 2.
    Nand,
    /// N-ary NOR, N >= 2.
    Nor,
    /// N-ary XOR (odd parity), N >= 2.
    Xor,
    /// N-ary XNOR (even parity), N >= 2.
    Xnor,
    /// 2:1 multiplexer; fanins `[sel, a, b]`, output `sel ? b : a`.
    Mux,
    /// D flip-flop; one fanin (the D pin). Sequential boundary.
    Dff,
    /// Named primary output marker; one fanin, combinationally transparent.
    Output,
}

impl CellKind {
    /// Whether this kind is a sequential element.
    pub fn is_sequential(self) -> bool {
        matches!(self, CellKind::Dff)
    }

    /// Whether this kind is a source (drives a value without fanins).
    pub fn is_source(self) -> bool {
        matches!(self, CellKind::Input | CellKind::Const(_))
    }

    /// Whether this kind is purely combinational logic (has fanins, not a DFF).
    pub fn is_combinational(self) -> bool {
        !self.is_source() && !self.is_sequential()
    }

    /// The number of fanins this kind requires, or `None` when variadic
    /// (`>= 2`).
    pub fn fixed_arity(self) -> Option<usize> {
        match self {
            CellKind::Input | CellKind::Const(_) => Some(0),
            CellKind::Buf | CellKind::Not | CellKind::Dff | CellKind::Output => Some(1),
            CellKind::Mux => Some(3),
            CellKind::And
            | CellKind::Or
            | CellKind::Nand
            | CellKind::Nor
            | CellKind::Xor
            | CellKind::Xnor => None,
        }
    }

    /// Evaluate the combinational function of this cell on boolean inputs.
    ///
    /// # Panics
    ///
    /// Panics when called on a source or sequential kind, or when `inputs`
    /// does not match the cell arity. Use only on combinational kinds.
    pub fn eval(self, inputs: &[bool]) -> bool {
        match self {
            CellKind::Buf | CellKind::Output => inputs[0],
            CellKind::Not => !inputs[0],
            CellKind::And => inputs.iter().all(|&b| b),
            CellKind::Or => inputs.iter().any(|&b| b),
            CellKind::Nand => !inputs.iter().all(|&b| b),
            CellKind::Nor => !inputs.iter().any(|&b| b),
            CellKind::Xor => inputs.iter().fold(false, |acc, &b| acc ^ b),
            CellKind::Xnor => !inputs.iter().fold(false, |acc, &b| acc ^ b),
            CellKind::Mux => {
                if inputs[0] {
                    inputs[2]
                } else {
                    inputs[1]
                }
            }
            CellKind::Input | CellKind::Const(_) | CellKind::Dff => {
                panic!("CellKind::eval called on non-combinational kind {self:?}")
            }
        }
    }

    /// Evaluate the cell bit-parallel on 64-cycle packed words.
    ///
    /// Each word carries the value of one fanin across 64 consecutive cycles;
    /// the result packs the cell output for the same cycles. This is the
    /// kernel behind the paper's "fast bit-parallel calculation" of switching
    /// signatures.
    ///
    /// # Panics
    ///
    /// Panics on non-combinational kinds (same contract as [`CellKind::eval`]).
    pub fn eval_words(self, inputs: &[u64]) -> u64 {
        match self {
            CellKind::Buf | CellKind::Output => inputs[0],
            CellKind::Not => !inputs[0],
            CellKind::And => inputs.iter().fold(!0u64, |acc, &w| acc & w),
            CellKind::Or => inputs.iter().fold(0u64, |acc, &w| acc | w),
            CellKind::Nand => !inputs.iter().fold(!0u64, |acc, &w| acc & w),
            CellKind::Nor => !inputs.iter().fold(0u64, |acc, &w| acc | w),
            CellKind::Xor => inputs.iter().fold(0u64, |acc, &w| acc ^ w),
            CellKind::Xnor => !inputs.iter().fold(0u64, |acc, &w| acc ^ w),
            CellKind::Mux => (!inputs[0] & inputs[1]) | (inputs[0] & inputs[2]),
            CellKind::Input | CellKind::Const(_) | CellKind::Dff => {
                panic!("CellKind::eval_words called on non-combinational kind {self:?}")
            }
        }
    }

    /// Nominal cell area in arbitrary units (roughly NAND2-equivalents),
    /// used by the hardening overhead study.
    pub fn area(self) -> f64 {
        match self {
            CellKind::Input | CellKind::Const(_) | CellKind::Output => 0.0,
            CellKind::Buf => 0.7,
            CellKind::Not => 0.5,
            CellKind::And | CellKind::Or => 1.2,
            CellKind::Nand | CellKind::Nor => 1.0,
            CellKind::Xor | CellKind::Xnor => 2.0,
            CellKind::Mux => 2.2,
            CellKind::Dff => 4.5,
        }
    }

    /// Nominal propagation delay in picoseconds for the static timing model
    /// used by transient latching analysis.
    pub fn delay_ps(self) -> f64 {
        match self {
            CellKind::Input | CellKind::Const(_) | CellKind::Output => 0.0,
            CellKind::Buf => 25.0,
            CellKind::Not => 15.0,
            CellKind::And | CellKind::Or => 35.0,
            CellKind::Nand | CellKind::Nor => 30.0,
            CellKind::Xor | CellKind::Xnor => 55.0,
            CellKind::Mux => 50.0,
            // Clock-to-Q; DFF outputs launch at the clock edge.
            CellKind::Dff => 40.0,
        }
    }
}

impl std::fmt::Display for CellKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CellKind::Input => "input",
            CellKind::Const(false) => "const0",
            CellKind::Const(true) => "const1",
            CellKind::Buf => "buf",
            CellKind::Not => "not",
            CellKind::And => "and",
            CellKind::Or => "or",
            CellKind::Nand => "nand",
            CellKind::Nor => "nor",
            CellKind::Xor => "xor",
            CellKind::Xnor => "xnor",
            CellKind::Mux => "mux",
            CellKind::Dff => "dff",
            CellKind::Output => "output",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_classification() {
        assert_eq!(CellKind::Input.fixed_arity(), Some(0));
        assert_eq!(CellKind::Not.fixed_arity(), Some(1));
        assert_eq!(CellKind::Mux.fixed_arity(), Some(3));
        assert_eq!(CellKind::And.fixed_arity(), None);
        assert!(CellKind::Dff.is_sequential());
        assert!(CellKind::Input.is_source());
        assert!(CellKind::Xor.is_combinational());
        assert!(!CellKind::Dff.is_combinational());
    }

    #[test]
    fn eval_basic_gates() {
        assert!(CellKind::And.eval(&[true, true, true]));
        assert!(!CellKind::And.eval(&[true, false, true]));
        assert!(CellKind::Or.eval(&[false, true]));
        assert!(!CellKind::Or.eval(&[false, false]));
        assert!(CellKind::Nand.eval(&[true, false]));
        assert!(!CellKind::Nand.eval(&[true, true]));
        assert!(CellKind::Nor.eval(&[false, false]));
        assert!(CellKind::Xor.eval(&[true, false, false]));
        assert!(!CellKind::Xor.eval(&[true, true]));
        assert!(CellKind::Xnor.eval(&[true, true]));
        assert!(CellKind::Not.eval(&[false]));
        assert!(CellKind::Buf.eval(&[true]));
    }

    #[test]
    fn eval_mux_selects() {
        // sel=0 -> a, sel=1 -> b
        assert!(!CellKind::Mux.eval(&[false, false, true]));
        assert!(CellKind::Mux.eval(&[true, false, true]));
        assert!(CellKind::Mux.eval(&[false, true, false]));
    }

    #[test]
    fn eval_words_matches_scalar_eval() {
        // Exhaustively compare packed and scalar evaluation for 3-input
        // combinations of every variadic kind plus mux.
        let kinds = [
            CellKind::And,
            CellKind::Or,
            CellKind::Nand,
            CellKind::Nor,
            CellKind::Xor,
            CellKind::Xnor,
            CellKind::Mux,
        ];
        for kind in kinds {
            let mut words = [0u64; 3];
            let mut expect = 0u64;
            for pattern in 0..8u64 {
                let bits = [pattern & 1 != 0, pattern & 2 != 0, pattern & 4 != 0];
                for (i, w) in words.iter_mut().enumerate() {
                    if bits[i] {
                        *w |= 1 << pattern;
                    }
                }
                if kind.eval(&bits) {
                    expect |= 1 << pattern;
                }
            }
            let got = kind.eval_words(&words);
            // Only the low 8 lanes carry patterns.
            assert_eq!(got & 0xff, expect & 0xff, "kind {kind}");
        }
    }

    #[test]
    fn area_and_delay_are_positive_for_logic() {
        for kind in [
            CellKind::Buf,
            CellKind::Not,
            CellKind::And,
            CellKind::Or,
            CellKind::Nand,
            CellKind::Nor,
            CellKind::Xor,
            CellKind::Xnor,
            CellKind::Mux,
            CellKind::Dff,
        ] {
            assert!(kind.area() > 0.0, "{kind}");
            assert!(kind.delay_ps() > 0.0, "{kind}");
        }
        assert_eq!(CellKind::Input.area(), 0.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(CellKind::Nand.to_string(), "nand");
        assert_eq!(CellKind::Const(true).to_string(), "const1");
        assert_eq!(CellKind::Dff.to_string(), "dff");
    }
}
