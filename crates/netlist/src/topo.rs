//! Topological ordering and level assignment of the combinational graph.

use crate::netlist::{GateId, Netlist, NetlistError};

/// A topological order of the combinational gates of a netlist.
///
/// Sequential elements ([`crate::CellKind::Dff`]) and sources are treated as
/// boundary nodes: DFF outputs and primary inputs are assumed available
/// before the combinational sweep, DFF `D` pins and output markers are
/// evaluated during it. Kahn's algorithm doubles as the combinational-loop
/// check.
#[derive(Debug, Clone)]
pub struct Topology {
    order: Vec<GateId>,
    level: Vec<u32>,
}

impl Topology {
    /// Build the topological order of `netlist`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalLoop`] when the combinational
    /// graph is cyclic.
    pub fn new(netlist: &Netlist) -> Result<Self, NetlistError> {
        let n = netlist.len();
        let mut indegree = vec![0u32; n];
        let mut level = vec![0u32; n];
        // Fanout adjacency restricted to combinational edges: an edge from a
        // gate to a consumer counts unless the consumer is a DFF (DFFs
        // consume at the *end* of the cycle and never form comb loops).
        let mut fanout: Vec<Vec<GateId>> = vec![Vec::new(); n];
        for (id, gate) in netlist.iter() {
            if gate.kind.is_source() || gate.kind.is_sequential() {
                continue;
            }
            for &f in &gate.fanin {
                fanout[f.index()].push(id);
                indegree[id.index()] += 1;
            }
        }
        let mut queue: Vec<GateId> = netlist
            .iter()
            .filter(|(_, g)| g.kind.is_source() || g.kind.is_sequential())
            .map(|(id, _)| id)
            .collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0usize;
        while head < queue.len() {
            let id = queue[head];
            head += 1;
            let gate = netlist.gate(id);
            if gate.kind.is_combinational() {
                order.push(id);
            }
            for &consumer in &fanout[id.index()] {
                let c = consumer.index();
                indegree[c] -= 1;
                level[c] = level[c].max(level[id.index()] + 1);
                if indegree[c] == 0 {
                    queue.push(consumer);
                }
            }
        }
        if let Some((i, _)) = indegree.iter().enumerate().find(|(_, &d)| d > 0) {
            return Err(NetlistError::CombinationalLoop {
                gate: GateId(i as u32),
            });
        }
        Ok(Self { order, level })
    }

    /// The combinational gates (including output markers) in dependency
    /// order: every gate appears after all of its combinational fanins.
    pub fn order(&self) -> &[GateId] {
        &self.order
    }

    /// Logic level of a gate: 0 for sources and DFF outputs, `1 + max(fanin
    /// levels)` for combinational gates.
    pub fn level(&self, id: GateId) -> u32 {
        self.level[id.index()]
    }

    /// The maximum logic level in the netlist (depth of the comb. graph).
    pub fn depth(&self) -> u32 {
        self.level.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CellKind;

    #[test]
    fn order_respects_dependencies() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g1 = n.add_gate(CellKind::And, &[a, b]);
        let g2 = n.add_gate(CellKind::Not, &[g1]);
        let g3 = n.add_gate(CellKind::Or, &[g2, a]);
        n.add_output("y", g3);
        let topo = Topology::new(&n).unwrap();
        let pos = |id: GateId| topo.order().iter().position(|&g| g == id).unwrap();
        assert!(pos(g1) < pos(g2));
        assert!(pos(g2) < pos(g3));
    }

    #[test]
    fn levels_increase_along_paths() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let g1 = n.add_gate(CellKind::Not, &[a]);
        let g2 = n.add_gate(CellKind::Not, &[g1]);
        let g3 = n.add_gate(CellKind::Not, &[g2]);
        let topo = Topology::new(&n).unwrap();
        assert_eq!(topo.level(a), 0);
        assert_eq!(topo.level(g1), 1);
        assert_eq!(topo.level(g2), 2);
        assert_eq!(topo.level(g3), 3);
        assert_eq!(topo.depth(), 3);
    }

    #[test]
    fn dff_is_a_boundary_not_a_loop() {
        let mut n = Netlist::new();
        // toggle flop: q -> not -> d
        let inv_id = GateId(0);
        let q_id = GateId(1);
        let inv = n.add_gate(CellKind::Not, &[q_id]);
        assert_eq!(inv, inv_id);
        let q = n.add_dff("q", inv);
        assert_eq!(q, q_id);
        let topo = Topology::new(&n).unwrap();
        assert_eq!(topo.order(), &[inv]);
        assert_eq!(topo.level(q), 0);
        assert_eq!(topo.level(inv), 1);
    }

    #[test]
    fn detects_loop() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        // g1 <-> g2 cycle
        let g1 = GateId(1);
        let g2 = GateId(2);
        let got1 = n.add_gate(CellKind::And, &[a, g2]);
        let got2 = n.add_gate(CellKind::Or, &[a, g1]);
        assert_eq!((got1, got2), (g1, g2));
        assert!(matches!(
            Topology::new(&n),
            Err(NetlistError::CombinationalLoop { .. })
        ));
    }

    #[test]
    fn empty_netlist_is_fine() {
        let n = Netlist::new();
        let topo = Topology::new(&n).unwrap();
        assert!(topo.order().is_empty());
        assert_eq!(topo.depth(), 0);
    }
}
