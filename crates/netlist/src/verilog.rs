//! Structural Verilog export and import.
//!
//! [`to_verilog`] renders a netlist as a flat structural Verilog module —
//! primitive gate instances, a ternary `assign` per mux, one clocked
//! `always` block per flip-flop — so the elaborated security logic can be
//! inspected, synthesized or formally compared with external EDA tools.
//! [`from_verilog`] parses the same subset back, which gives the test suite
//! a behavioral round-trip check.
//!
//! The subset is deliberately small: one module, `input`/`output`/`wire`
//! declarations, gate primitives (`buf not and or nand nor xor xnor`),
//! `assign w = s ? a : b;`, `assign w = 1'b0;`, and
//! `always @(posedge clk) q <= d;`.

use crate::cell::CellKind;
use crate::netlist::{GateId, Netlist};
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;

/// Errors from [`from_verilog`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseVerilogError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseVerilogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseVerilogError {}

/// Make a netlist signal name a legal Verilog identifier.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for ch in name.chars() {
        match ch {
            'a'..='z' | 'A'..='Z' | '0'..='9' | '_' | '$' => out.push(ch),
            '[' => out.push('_'),
            ']' => {}
            _ => out.push('_'),
        }
    }
    if out.is_empty() || out.starts_with(|c: char| c.is_ascii_digit()) {
        out.insert(0, 'n');
    }
    out
}

/// The Verilog signal name of a gate's output net.
fn net_name(netlist: &Netlist, id: GateId) -> String {
    match netlist.name_of(id) {
        Some(name) => sanitize(name),
        None => format!("n{}", id.0),
    }
}

/// Render `netlist` as a structural Verilog module named `module_name`.
///
/// Output markers become module outputs driven by continuous assignments;
/// flip-flops clock on `posedge clk`.
pub fn to_verilog(netlist: &Netlist, module_name: &str) -> String {
    let mut s = String::new();
    let name = |id: GateId| net_name(netlist, id);

    // Ports.
    let mut ports: Vec<String> = vec!["clk".into()];
    ports.extend(netlist.inputs().iter().map(|&i| name(i)));
    ports.extend(netlist.outputs().iter().map(|&o| name(o)));
    let _ = writeln!(s, "module {module_name} (");
    let _ = writeln!(s, "  {}", ports.join(",\n  "));
    let _ = writeln!(s, ");");
    let _ = writeln!(s, "  input clk;");
    for &i in netlist.inputs() {
        let _ = writeln!(s, "  input {};", name(i));
    }
    for &o in netlist.outputs() {
        let _ = writeln!(s, "  output {};", name(o));
    }

    // Internal wires and registers.
    for (id, gate) in netlist.iter() {
        match gate.kind {
            CellKind::Input | CellKind::Output => {}
            CellKind::Dff => {
                let _ = writeln!(s, "  reg {};", name(id));
            }
            _ => {
                let _ = writeln!(s, "  wire {};", name(id));
            }
        }
    }
    let _ = writeln!(s);

    // Logic.
    for (id, gate) in netlist.iter() {
        let out = name(id);
        let ins: Vec<String> = gate.fanin.iter().map(|&f| name(f)).collect();
        match gate.kind {
            CellKind::Input => {}
            CellKind::Const(v) => {
                let _ = writeln!(s, "  assign {out} = 1'b{};", u8::from(v));
            }
            CellKind::Buf => {
                let _ = writeln!(s, "  buf g{} ({out}, {});", id.0, ins[0]);
            }
            CellKind::Not => {
                let _ = writeln!(s, "  not g{} ({out}, {});", id.0, ins[0]);
            }
            CellKind::And
            | CellKind::Or
            | CellKind::Nand
            | CellKind::Nor
            | CellKind::Xor
            | CellKind::Xnor => {
                let prim = gate.kind.to_string();
                let _ = writeln!(s, "  {prim} g{} ({out}, {});", id.0, ins.join(", "));
            }
            CellKind::Mux => {
                let _ = writeln!(s, "  assign {out} = {} ? {} : {};", ins[0], ins[2], ins[1]);
            }
            CellKind::Dff => {
                let _ = writeln!(s, "  always @(posedge clk) {out} <= {};", ins[0]);
            }
            CellKind::Output => {
                let _ = writeln!(s, "  assign {out} = {};", ins[0]);
            }
        }
    }
    let _ = writeln!(s, "endmodule");
    s
}

/// Parse the structural subset emitted by [`to_verilog`].
///
/// # Errors
///
/// Returns [`ParseVerilogError`] on anything outside the supported subset,
/// undeclared signals, or missing drivers.
pub fn from_verilog(source: &str) -> Result<Netlist, ParseVerilogError> {
    enum Pending {
        Prim(CellKind, Vec<String>),
        Mux(String, String, String),
        ConstV(bool),
        Dff(String),
        OutAssign(String),
    }
    let err = |line: usize, message: String| ParseVerilogError { line, message };

    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut pending: Vec<(usize, String, Pending)> = Vec::new();

    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        let text = raw.trim().trim_end_matches(';').trim();
        if text.is_empty()
            || text.starts_with("module")
            || text.starts_with(')')
            || text.starts_with("endmodule")
            || text.starts_with("//")
            || text.starts_with("wire ")
            || text.starts_with("reg ")
            || !raw.contains(';')
        {
            // Declarations of wires/regs are reconstructed from drivers;
            // port-list lines carry no structure.
            if let Some(rest) = text.strip_prefix("input ") {
                let name = rest.trim();
                if name != "clk" {
                    inputs.push(name.to_owned());
                }
            } else if let Some(rest) = text.strip_prefix("output ") {
                outputs.push(rest.trim().to_owned());
            }
            continue;
        }
        if let Some(rest) = text.strip_prefix("input ") {
            let name = rest.trim();
            if name != "clk" {
                inputs.push(name.to_owned());
            }
            continue;
        }
        if let Some(rest) = text.strip_prefix("output ") {
            outputs.push(rest.trim().to_owned());
            continue;
        }
        if let Some(rest) = text.strip_prefix("assign ") {
            let (lhs, rhs) = rest
                .split_once('=')
                .ok_or_else(|| err(line, format!("malformed assign `{text}`")))?;
            let lhs = lhs.trim().to_owned();
            let rhs = rhs.trim();
            if let Some(v) = rhs.strip_prefix("1'b") {
                let value = v.trim() == "1";
                pending.push((line, lhs, Pending::ConstV(value)));
            } else if rhs.contains('?') {
                let (sel, arms) = rhs
                    .split_once('?')
                    .ok_or_else(|| err(line, "malformed mux".into()))?;
                let (b, a) = arms
                    .split_once(':')
                    .ok_or_else(|| err(line, "malformed mux arms".into()))?;
                pending.push((
                    line,
                    lhs,
                    Pending::Mux(
                        sel.trim().to_owned(),
                        a.trim().to_owned(),
                        b.trim().to_owned(),
                    ),
                ));
            } else {
                pending.push((line, lhs, Pending::OutAssign(rhs.to_owned())));
            }
            continue;
        }
        if let Some(rest) = text.strip_prefix("always @(posedge clk)") {
            let (q, d) = rest
                .split_once("<=")
                .ok_or_else(|| err(line, format!("malformed always `{text}`")))?;
            pending.push((line, q.trim().to_owned(), Pending::Dff(d.trim().to_owned())));
            continue;
        }
        // Primitive instance: `<prim> <inst> (out, in...)`.
        let mut parts = text.splitn(2, char::is_whitespace);
        let prim = parts.next().unwrap_or_default();
        let kind = match prim {
            "buf" => CellKind::Buf,
            "not" => CellKind::Not,
            "and" => CellKind::And,
            "or" => CellKind::Or,
            "nand" => CellKind::Nand,
            "nor" => CellKind::Nor,
            "xor" => CellKind::Xor,
            "xnor" => CellKind::Xnor,
            other => return Err(err(line, format!("unsupported statement `{other}`"))),
        };
        let rest = parts.next().unwrap_or_default();
        let open = rest
            .find('(')
            .ok_or_else(|| err(line, "missing port list".into()))?;
        let close = rest
            .rfind(')')
            .ok_or_else(|| err(line, "missing `)`".into()))?;
        let nets: Vec<String> = rest[open + 1..close]
            .split(',')
            .map(|n| n.trim().to_owned())
            .collect();
        if nets.len() < 2 {
            return Err(err(line, "primitive needs an output and inputs".into()));
        }
        let out = nets[0].clone();
        pending.push((line, out, Pending::Prim(kind, nets[1..].to_vec())));
    }

    // Pass 2: materialize. Inputs first, then drivers in dependency-free
    // order via placeholder patching (DFFs and forward refs are legal).
    let mut n = Netlist::new();
    let mut ids: HashMap<String, GateId> = HashMap::new();
    for name in &inputs {
        ids.insert(name.clone(), n.add_input(name.clone()));
    }
    // Create one node per driven signal with placeholder fanins.
    for (line, lhs, p) in &pending {
        if ids.contains_key(lhs) {
            return Err(err(*line, format!("signal `{lhs}` driven twice")));
        }
        let placeholder: Vec<GateId> = Vec::new();
        let id = match p {
            Pending::ConstV(v) => n.add_const(*v),
            Pending::Dff(_) => {
                let tmp = n.add_const(false);
                n.add_dff(lhs.clone(), tmp)
            }
            Pending::Prim(kind, ins) => {
                let tmp: Vec<GateId> = ins.iter().map(|_| n.add_const(false)).collect();
                if outputs.contains(lhs) {
                    // An output driven directly by a primitive (not emitted
                    // by `to_verilog`, but accept it).
                    n.add_named_gate(format!("{lhs}__drv"), *kind, &tmp)
                } else {
                    n.add_named_gate(lhs.clone(), *kind, &tmp)
                }
            }
            Pending::Mux(_, _, _) => {
                let tmp: Vec<GateId> = (0..3).map(|_| n.add_const(false)).collect();
                n.add_named_gate(lhs.clone(), CellKind::Mux, &tmp)
            }
            Pending::OutAssign(_) => {
                let tmp = n.add_const(false);
                if outputs.contains(lhs) {
                    n.add_output(lhs.clone(), tmp)
                } else {
                    n.add_named_gate(lhs.clone(), CellKind::Buf, &[tmp])
                }
            }
        };
        let _ = placeholder;
        ids.insert(lhs.clone(), id);
    }
    // Patch real fanins.
    let resolve = |ids: &HashMap<String, GateId>, line: usize, name: &str| {
        ids.get(name)
            .copied()
            .ok_or_else(|| err(line, format!("undriven signal `{name}`")))
    };
    for (line, lhs, p) in &pending {
        let id = ids[lhs];
        let fanin: Vec<GateId> = match p {
            Pending::ConstV(_) => continue,
            Pending::Dff(d) => vec![resolve(&ids, *line, d)?],
            Pending::Prim(_, ins) => ins
                .iter()
                .map(|i| resolve(&ids, *line, i))
                .collect::<Result<_, _>>()?,
            Pending::Mux(sel, a, b) => vec![
                resolve(&ids, *line, sel)?,
                resolve(&ids, *line, a)?,
                resolve(&ids, *line, b)?,
            ],
            Pending::OutAssign(src) => vec![resolve(&ids, *line, src)?],
        };
        n.set_fanin(id, fanin);
    }
    n.validate()
        .map_err(|e| err(0, format!("reconstructed netlist invalid: {e}")))?;
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::BusBuilder;
    use crate::topo::Topology;

    fn demo_netlist() -> Netlist {
        let mut n = Netlist::new();
        let mut b = BusBuilder::new(&mut n);
        let a = b.input_bus("a", 4);
        let c = b.const_bus(0x9, 4);
        let ge = b.uge(&a, &c);
        let en = b.netlist().add_input("en");
        let q = b.dff_bus_en("state", &[ge], en);
        let inv = b.netlist().add_gate(CellKind::Not, &[q[0]]);
        let m = b.netlist().add_gate(CellKind::Mux, &[en, q[0], inv]);
        b.netlist().add_output("y", m);
        n
    }

    /// Simulate a sequential netlist for a few cycles with named inputs.
    fn simulate(
        netlist: &Netlist,
        cycles: usize,
        stim: impl Fn(usize, &str) -> bool,
    ) -> Vec<Vec<bool>> {
        let topo = Topology::new(netlist).unwrap();
        let mut state: HashMap<GateId, bool> = netlist.dffs().iter().map(|&d| (d, false)).collect();
        let mut outs = Vec::new();
        for c in 0..cycles {
            let mut values = vec![false; netlist.len()];
            for (id, gate) in netlist.iter() {
                match gate.kind {
                    CellKind::Input => values[id.index()] = stim(c, gate.name.as_deref().unwrap()),
                    CellKind::Const(v) => values[id.index()] = v,
                    CellKind::Dff => values[id.index()] = state[&id],
                    _ => {}
                }
            }
            for &id in topo.order() {
                let gate = netlist.gate(id);
                let ins: Vec<bool> = gate.fanin.iter().map(|f| values[f.index()]).collect();
                values[id.index()] = gate.kind.eval(&ins);
            }
            outs.push(
                netlist
                    .outputs()
                    .iter()
                    .map(|&o| values[o.index()])
                    .collect(),
            );
            for &d in netlist.dffs() {
                state.insert(d, values[netlist.gate(d).fanin[0].index()]);
            }
        }
        outs
    }

    #[test]
    fn export_mentions_all_structure() {
        let n = demo_netlist();
        let v = to_verilog(&n, "demo");
        assert!(v.contains("module demo"));
        assert!(v.contains("input a_0;"));
        assert!(v.contains("output y;"));
        assert!(v.contains("reg state_0;"));
        assert!(v.contains("always @(posedge clk) state_0 <="));
        assert!(v.contains("endmodule"));
    }

    #[test]
    fn roundtrip_preserves_behavior() {
        let original = demo_netlist();
        let text = to_verilog(&original, "demo");
        let parsed = from_verilog(&text).unwrap();
        assert_eq!(parsed.validate(), Ok(()));
        assert_eq!(parsed.inputs().len(), original.inputs().len());
        assert_eq!(parsed.outputs().len(), original.outputs().len());
        assert_eq!(parsed.dffs().len(), original.dffs().len());

        // Behavioral equivalence over a deterministic stimulus. The parsed
        // netlist's input names are the sanitized originals.
        let stim = |c: usize, name: &str| {
            let h = name.bytes().map(usize::from).sum::<usize>();
            (c * 7 + h).is_multiple_of(3)
        };
        let a = simulate(&original, 24, |c, name| stim(c, &sanitize(name)));
        let b = simulate(&parsed, 24, stim);
        assert_eq!(a, b);
    }

    #[test]
    fn parses_reject_garbage() {
        // The parser is line-oriented, like the emitter.
        let bad = "module m (a);
  input a;
  frobnicate q (a, a);
endmodule";
        assert!(from_verilog(bad).is_err());
        let undriven = "module m (y);\n  output y;\n  assign y = nope;\nendmodule";
        assert!(from_verilog(undriven).is_err());
    }

    #[test]
    fn double_driver_is_rejected() {
        let src = "module m (a, y);\n  input a;\n  output y;\n  wire w;\n  \
                   buf g0 (w, a);\n  not g1 (w, a);\n  assign y = w;\nendmodule";
        let e = from_verilog(src).unwrap_err();
        assert!(e.message.contains("driven twice"));
    }

    #[test]
    fn sanitize_makes_legal_identifiers() {
        assert_eq!(sanitize("addr[3]"), "addr_3");
        assert_eq!(sanitize("cfg_base0[15]"), "cfg_base0_15");
        assert_eq!(sanitize("9lives"), "n9lives");
        assert_eq!(sanitize("a b"), "a_b");
    }

    #[test]
    fn mpu_scale_netlist_roundtrips() {
        // A larger structure: 16-bit comparator bank similar to one MPU
        // region check.
        let mut n = Netlist::new();
        let mut b = BusBuilder::new(&mut n);
        let addr = b.input_bus("addr", 16);
        let base = b.input_bus("base", 16);
        let limit = b.input_bus("limit", 16);
        let ge = b.uge(&addr, &base);
        let le = b.ule(&addr, &limit);
        let hit = b.netlist().add_gate(CellKind::And, &[ge, le]);
        let q = b.netlist().add_dff("hit_q", hit);
        b.netlist().add_output("hit", q);

        let text = to_verilog(&n, "region_check");
        let parsed = from_verilog(&text).unwrap();
        let stim = |c: usize, name: &str| {
            let h = name.bytes().map(usize::from).sum::<usize>();
            (c.wrapping_mul(31) ^ h) % 5 < 2
        };
        let a = simulate(&n, 40, |c, name| stim(c, &sanitize(name)));
        let p = simulate(&parsed, 40, stim);
        assert_eq!(a, p);
    }
}
