//! The gate graph: gates, nets, names and validation.

use crate::cell::CellKind;
use crate::program::GateProgram;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

/// Index of a gate inside a [`Netlist`].
///
/// The output net of a gate is identified with the gate itself (every gate
/// drives exactly one net), so a `GateId` doubles as a signal identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GateId(pub u32);

impl GateId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// One gate instance: a cell kind plus its fanin nets and optional name.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Gate {
    /// The cell kind.
    pub kind: CellKind,
    /// Fanin gate ids, in pin order.
    pub fanin: Vec<GateId>,
    /// Optional instance name (always set for inputs, outputs and DFFs).
    pub name: Option<String>,
}

/// Errors reported by netlist construction and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A gate references a fanin id that does not exist.
    DanglingFanin { gate: GateId, fanin: GateId },
    /// A gate has the wrong number of fanins for its kind.
    BadArity {
        gate: GateId,
        kind: CellKind,
        got: usize,
    },
    /// The combinational part of the netlist contains a cycle through `gate`.
    CombinationalLoop { gate: GateId },
    /// A named signal was looked up but does not exist.
    UnknownName(String),
    /// Two gates were given the same name.
    DuplicateName(String),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DanglingFanin { gate, fanin } => {
                write!(f, "gate {gate} references nonexistent fanin {fanin}")
            }
            NetlistError::BadArity { gate, kind, got } => {
                write!(
                    f,
                    "gate {gate} of kind {kind} has invalid fanin count {got}"
                )
            }
            NetlistError::CombinationalLoop { gate } => {
                write!(f, "combinational loop through gate {gate}")
            }
            NetlistError::UnknownName(n) => write!(f, "unknown signal name `{n}`"),
            NetlistError::DuplicateName(n) => write!(f, "duplicate signal name `{n}`"),
        }
    }
}

impl std::error::Error for NetlistError {}

/// Aggregate statistics of a netlist (gate counts and total cell area).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct NetlistStats {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of D flip-flops.
    pub dffs: usize,
    /// Number of combinational gates (excluding `Output` markers).
    pub combinational: usize,
    /// Total cell area (arbitrary units, see [`CellKind::area`]).
    pub area: f64,
}

/// A flat gate-level netlist.
///
/// Gates are stored in insertion order; [`GateId`]s are dense indices. The
/// netlist is mutable during construction; analyses ([`crate::Topology`],
/// cones, placement) are built as separate immutable views so a validated
/// netlist is never silently invalidated.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Netlist {
    gates: Vec<Gate>,
    names: HashMap<String, GateId>,
    inputs: Vec<GateId>,
    outputs: Vec<GateId>,
    dffs: Vec<GateId>,
    /// Lazily built fanout adjacency; invalidated by any mutation.
    fanout_cache: OnceLock<FanoutAdjacency>,
    /// Lazily compiled straight-line program; invalidated by any mutation.
    program_cache: OnceLock<Result<GateProgram, NetlistError>>,
}

/// Compressed-sparse-row fanout adjacency of a [`Netlist`].
///
/// `of(g)` is the slice of gates consuming `g`'s output, in ascending
/// consumer-id order (the order the old `Vec<Vec<GateId>>` representation
/// produced). Two flat arrays instead of one allocation per gate, built once
/// per netlist by [`Netlist::fanouts`] and cached until the next mutation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FanoutAdjacency {
    offsets: Vec<u32>,
    targets: Vec<GateId>,
}

impl FanoutAdjacency {
    fn build(netlist: &Netlist) -> Self {
        let n = netlist.len();
        let mut offsets = vec![0u32; n + 1];
        for (_, gate) in netlist.iter() {
            for &f in &gate.fanin {
                offsets[f.index() + 1] += 1;
            }
        }
        for i in 1..=n {
            offsets[i] += offsets[i - 1];
        }
        let mut targets = vec![GateId(0); offsets[n] as usize];
        let mut cursor = offsets.clone();
        for (id, gate) in netlist.iter() {
            for &f in &gate.fanin {
                let slot = &mut cursor[f.index()];
                targets[*slot as usize] = id;
                *slot += 1;
            }
        }
        Self { offsets, targets }
    }

    /// The consumers of gate `id`, in ascending id order.
    pub fn of(&self, id: GateId) -> &[GateId] {
        let lo = self.offsets[id.index()] as usize;
        let hi = self.offsets[id.index() + 1] as usize;
        &self.targets[lo..hi]
    }
}

impl Netlist {
    /// Create an empty netlist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of gates (of every kind) in the netlist.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether the netlist contains no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// The gate with the given id.
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of range.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// Iterate over `(GateId, &Gate)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (GateId, &Gate)> {
        self.gates
            .iter()
            .enumerate()
            .map(|(i, g)| (GateId(i as u32), g))
    }

    /// All primary input gate ids, in declaration order.
    pub fn inputs(&self) -> &[GateId] {
        &self.inputs
    }

    /// All primary output marker gate ids, in declaration order.
    pub fn outputs(&self) -> &[GateId] {
        &self.outputs
    }

    /// All DFF gate ids, in declaration order.
    pub fn dffs(&self) -> &[GateId] {
        &self.dffs
    }

    /// Look up a named signal.
    pub fn find(&self, name: &str) -> Option<GateId> {
        self.names.get(name).copied()
    }

    /// Look up a named signal, reporting an error when absent.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownName`] when no gate carries `name`.
    pub fn resolve(&self, name: &str) -> Result<GateId, NetlistError> {
        self.find(name)
            .ok_or_else(|| NetlistError::UnknownName(name.to_owned()))
    }

    /// The name of a gate, when it has one.
    pub fn name_of(&self, id: GateId) -> Option<&str> {
        self.gate(id).name.as_deref()
    }

    fn push(&mut self, gate: Gate) -> GateId {
        self.fanout_cache.take();
        self.program_cache.take();
        let id = GateId(self.gates.len() as u32);
        if let Some(name) = &gate.name {
            // Last writer wins is surprising; keep first and panic in debug.
            debug_assert!(
                !self.names.contains_key(name),
                "duplicate signal name `{name}`"
            );
            self.names.insert(name.clone(), id);
        }
        match gate.kind {
            CellKind::Input => self.inputs.push(id),
            CellKind::Output => self.outputs.push(id),
            CellKind::Dff => self.dffs.push(id),
            _ => {}
        }
        self.gates.push(gate);
        id
    }

    /// Add a named primary input.
    pub fn add_input(&mut self, name: impl Into<String>) -> GateId {
        self.push(Gate {
            kind: CellKind::Input,
            fanin: Vec::new(),
            name: Some(name.into()),
        })
    }

    /// Add a constant driver.
    pub fn add_const(&mut self, value: bool) -> GateId {
        self.push(Gate {
            kind: CellKind::Const(value),
            fanin: Vec::new(),
            name: None,
        })
    }

    /// Add an anonymous combinational gate.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `kind` is not combinational; arity is
    /// checked by [`Netlist::validate`].
    pub fn add_gate(&mut self, kind: CellKind, fanin: &[GateId]) -> GateId {
        debug_assert!(kind.is_combinational(), "add_gate with kind {kind}");
        self.push(Gate {
            kind,
            fanin: fanin.to_vec(),
            name: None,
        })
    }

    /// Add a named combinational gate.
    pub fn add_named_gate(
        &mut self,
        name: impl Into<String>,
        kind: CellKind,
        fanin: &[GateId],
    ) -> GateId {
        debug_assert!(kind.is_combinational(), "add_named_gate with kind {kind}");
        self.push(Gate {
            kind,
            fanin: fanin.to_vec(),
            name: Some(name.into()),
        })
    }

    /// Add a named D flip-flop whose D pin is `d`.
    pub fn add_dff(&mut self, name: impl Into<String>, d: GateId) -> GateId {
        self.push(Gate {
            kind: CellKind::Dff,
            fanin: vec![d],
            name: Some(name.into()),
        })
    }

    /// Add a named primary output marker driven by `from`.
    pub fn add_output(&mut self, name: impl Into<String>, from: GateId) -> GateId {
        self.push(Gate {
            kind: CellKind::Output,
            fanin: vec![from],
            name: Some(name.into()),
        })
    }

    /// Replace the fanin pins of an existing gate.
    ///
    /// Used by construction patterns that need forward references (e.g. a
    /// register with a write-enable mux fed from its own output). The new
    /// connectivity is checked by the next [`Netlist::validate`] call.
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of range.
    pub fn set_fanin(&mut self, id: GateId, fanin: Vec<GateId>) {
        self.fanout_cache.take();
        self.program_cache.take();
        self.gates[id.index()].fanin = fanin;
    }

    /// Fanout adjacency: for each gate, the gates that consume it.
    ///
    /// Built on first use and cached on the netlist (every mutation
    /// invalidates the cache), so repeated traversals — placement, cones,
    /// per-cell pre-characterization — stop paying an O(gates) rebuild.
    pub fn fanouts(&self) -> &FanoutAdjacency {
        self.fanout_cache
            .get_or_init(|| FanoutAdjacency::build(self))
    }

    /// The compiled straight-line program of the combinational logic.
    ///
    /// Built on first use and cached on the netlist with the same
    /// invalidation discipline as [`Netlist::fanouts`]: every mutation
    /// (`push`, [`Netlist::set_fanin`]) drops the cache, so the program a
    /// kernel receives always reflects the current adjacency.
    ///
    /// # Errors
    ///
    /// Fails when the combinational graph is cyclic.
    pub fn program(&self) -> Result<&GateProgram, NetlistError> {
        self.program_cache
            .get_or_init(|| GateProgram::build(self))
            .as_ref()
            .map_err(Clone::clone)
    }

    /// Validate structural invariants: fanin ids in range, arities correct,
    /// names unique, and the combinational graph acyclic.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a [`NetlistError`].
    pub fn validate(&self) -> Result<(), NetlistError> {
        let n = self.gates.len() as u32;
        let mut seen = HashMap::new();
        for (id, gate) in self.iter() {
            for &f in &gate.fanin {
                if f.0 >= n {
                    return Err(NetlistError::DanglingFanin { gate: id, fanin: f });
                }
            }
            match gate.kind.fixed_arity() {
                Some(k) if gate.fanin.len() != k => {
                    return Err(NetlistError::BadArity {
                        gate: id,
                        kind: gate.kind,
                        got: gate.fanin.len(),
                    })
                }
                None if gate.fanin.len() < 2 => {
                    return Err(NetlistError::BadArity {
                        gate: id,
                        kind: gate.kind,
                        got: gate.fanin.len(),
                    })
                }
                _ => {}
            }
            if let Some(name) = &gate.name {
                if let Some(prev) = seen.insert(name.clone(), id) {
                    let _ = prev;
                    return Err(NetlistError::DuplicateName(name.clone()));
                }
            }
        }
        // Acyclicity is established by Topology construction.
        crate::topo::Topology::new(self).map(|_| ())
    }

    /// Aggregate statistics (gate counts and total cell area).
    pub fn stats(&self) -> NetlistStats {
        let mut s = NetlistStats::default();
        for (_, gate) in self.iter() {
            match gate.kind {
                CellKind::Input => s.inputs += 1,
                CellKind::Output => s.outputs += 1,
                CellKind::Dff => s.dffs += 1,
                CellKind::Const(_) => {}
                _ => s.combinational += 1,
            }
            s.area += gate.kind.area();
        }
        s
    }

    /// Ids of all combinational logic gates (excluding sources, DFFs and
    /// output markers).
    pub fn combinational_gates(&self) -> Vec<GateId> {
        self.iter()
            .filter(|(_, g)| g.kind.is_combinational() && g.kind != CellKind::Output)
            .map(|(id, _)| id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Netlist {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.add_gate(CellKind::And, &[a, b]);
        let q = n.add_dff("q", g);
        n.add_output("y", q);
        n
    }

    #[test]
    fn construction_and_lookup() {
        let n = tiny();
        assert_eq!(n.len(), 5);
        assert_eq!(n.inputs().len(), 2);
        assert_eq!(n.outputs().len(), 1);
        assert_eq!(n.dffs().len(), 1);
        let q = n.find("q").unwrap();
        assert_eq!(n.gate(q).kind, CellKind::Dff);
        assert_eq!(n.name_of(q), Some("q"));
        assert!(n.find("nope").is_none());
        assert!(matches!(
            n.resolve("nope"),
            Err(NetlistError::UnknownName(_))
        ));
    }

    #[test]
    fn validate_accepts_wellformed() {
        assert_eq!(tiny().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_dangling_fanin() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        n.add_gate(CellKind::And, &[a, GateId(99)]);
        assert!(matches!(
            n.validate(),
            Err(NetlistError::DanglingFanin { .. })
        ));
    }

    #[test]
    fn validate_rejects_bad_arity() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        // AND with a single fanin is malformed.
        n.push(Gate {
            kind: CellKind::And,
            fanin: vec![a],
            name: None,
        });
        assert!(matches!(n.validate(), Err(NetlistError::BadArity { .. })));
    }

    #[test]
    fn validate_rejects_combinational_loop() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        // g1 and g2 feed each other.
        let g1 = n.push(Gate {
            kind: CellKind::And,
            fanin: vec![a, GateId(2)],
            name: None,
        });
        n.push(Gate {
            kind: CellKind::Or,
            fanin: vec![a, g1],
            name: None,
        });
        assert!(matches!(
            n.validate(),
            Err(NetlistError::CombinationalLoop { .. })
        ));
    }

    #[test]
    fn dff_breaks_cycles() {
        // A register feeding its own D pin through an inverter is legal.
        let mut n = Netlist::new();
        let q_placeholder = GateId(1); // the dff will be gate 1
        let inv = n.push(Gate {
            kind: CellKind::Not,
            fanin: vec![q_placeholder],
            name: None,
        });
        let q = n.add_dff("toggle", inv);
        assert_eq!(q, q_placeholder);
        assert_eq!(n.validate(), Ok(()));
    }

    #[test]
    fn fanouts_are_inverse_of_fanins() {
        let n = tiny();
        let fo = n.fanouts();
        let a = n.find("a").unwrap();
        let and_consumers = fo.of(a);
        assert_eq!(and_consumers.len(), 1);
        assert_eq!(n.gate(and_consumers[0]).kind, CellKind::And);
        // Every fanin edge appears exactly once in the adjacency, ascending.
        for (id, gate) in n.iter() {
            for &f in &gate.fanin {
                assert!(fo.of(f).contains(&id));
            }
            assert!(fo.of(id).windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn fanout_cache_is_invalidated_by_mutation() {
        let mut n = tiny();
        let a = n.find("a").unwrap();
        let b = n.find("b").unwrap();
        assert_eq!(n.fanouts().of(a).len(), 1);
        // Rewiring the AND gate off `a` must rebuild the adjacency.
        let and = n.fanouts().of(a)[0];
        n.set_fanin(and, vec![b, b]);
        assert!(n.fanouts().of(a).is_empty());
        assert_eq!(n.fanouts().of(b).len(), 2);
        // Adding a gate invalidates too.
        let g = n.add_gate(CellKind::Not, &[a]);
        assert_eq!(n.fanouts().of(a), [g]);
    }

    #[test]
    fn program_cache_is_invalidated_by_mutation() {
        // Regression: a cached levelization must never serve stale
        // adjacency to the program builder after a rewire.
        let mut n = tiny();
        let a = n.find("a").unwrap();
        let b = n.find("b").unwrap();
        let and = n.fanouts().of(a)[0];
        let before = n.program().unwrap().clone();
        let and_op = (0..before.len())
            .find(|&i| before.out(i) == and.index())
            .unwrap();
        assert_eq!(before.fanins(and_op), &[a.0, b.0]);
        // Rewiring the AND gate off `a` must rebuild the program.
        n.set_fanin(and, vec![b, b]);
        let after = n.program().unwrap().clone();
        let and_op = (0..after.len())
            .find(|&i| after.out(i) == and.index())
            .unwrap();
        assert_eq!(after.fanins(and_op), &[b.0, b.0]);
        assert!(after.consumers(a.index()).is_empty());
        assert_eq!(after.consumers(b.index()).len(), 2);
        // Adding a gate invalidates too (op count grows).
        let g = n.add_gate(CellKind::Not, &[a]);
        let grown = n.program().unwrap();
        assert_eq!(grown.len(), after.len() + 1);
        assert_eq!(
            grown.consumers(a.index()),
            &[(0..grown.len())
                .find(|&i| grown.out(i) == g.index())
                .unwrap() as u32]
        );
    }

    #[test]
    fn stats_count_and_area() {
        let n = tiny();
        let s = n.stats();
        assert_eq!(s.inputs, 2);
        assert_eq!(s.outputs, 1);
        assert_eq!(s.dffs, 1);
        assert_eq!(s.combinational, 1);
        assert!(s.area > 0.0);
    }

    #[test]
    fn combinational_gates_excludes_markers() {
        let n = tiny();
        let cg = n.combinational_gates();
        assert_eq!(cg.len(), 1);
        assert_eq!(n.gate(cg[0]).kind, CellKind::And);
    }

    #[test]
    fn error_display_is_informative() {
        let e = NetlistError::UnknownName("foo".into());
        assert!(e.to_string().contains("foo"));
        let e = NetlistError::CombinationalLoop { gate: GateId(3) };
        assert!(e.to_string().contains("g3"));
    }
}
