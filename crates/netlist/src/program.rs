//! Levelized structure-of-arrays gate program.
//!
//! A [`GateProgram`] is the netlist's combinational logic compiled once
//! into a straight-line program: contiguous arrays of opcodes, fanin
//! operand indices (CSR) and output slots in topological order, grouped by
//! logic level. Evaluators iterate flat arrays with a tight opcode loop
//! instead of chasing `Gate` objects through the graph — the substrate of
//! the 256-wide compiled transient kernel in `xlmc-gatesim`.
//!
//! The program is a pure function of the netlist's structure. It is built
//! by [`Netlist::program`](crate::Netlist::program) and cached on the
//! netlist exactly like the fanout CSR: any mutation (`push`, `set_fanin`)
//! invalidates the cache, so a stale program can never be served after a
//! rewire.

use crate::cell::CellKind;
use crate::netlist::{GateId, Netlist, NetlistError};
use crate::topo::Topology;

/// Opcode of one straight-line program step.
///
/// Output markers compile to [`Opcode::Buf`]: combinationally they are
/// identity pass-throughs, and the per-op `delay_ps` array carries their
/// (zero) propagation delay so timing stays exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// Identity (also output markers).
    Buf,
    /// Inverter.
    Not,
    /// N-ary AND.
    And,
    /// N-ary OR.
    Or,
    /// N-ary NAND.
    Nand,
    /// N-ary NOR.
    Nor,
    /// N-ary XOR (odd parity).
    Xor,
    /// N-ary XNOR (even parity).
    Xnor,
    /// 2:1 mux, operands `[sel, a, b]`.
    Mux,
}

impl Opcode {
    /// Word-wide boolean evaluation (64 independent lanes per `u64`),
    /// matching [`CellKind::eval_words`] for the corresponding cell.
    #[inline]
    pub fn eval_words(self, inputs: &[u64]) -> u64 {
        match self {
            Opcode::Buf => inputs[0],
            Opcode::Not => !inputs[0],
            Opcode::And => inputs.iter().fold(!0u64, |acc, &w| acc & w),
            Opcode::Or => inputs.iter().fold(0u64, |acc, &w| acc | w),
            Opcode::Nand => !inputs.iter().fold(!0u64, |acc, &w| acc & w),
            Opcode::Nor => !inputs.iter().fold(0u64, |acc, &w| acc | w),
            Opcode::Xor => inputs.iter().fold(0u64, |acc, &w| acc ^ w),
            Opcode::Xnor => !inputs.iter().fold(0u64, |acc, &w| acc ^ w),
            Opcode::Mux => (!inputs[0] & inputs[1]) | (inputs[0] & inputs[2]),
        }
    }

    fn from_kind(kind: CellKind) -> Option<Self> {
        Some(match kind {
            CellKind::Buf | CellKind::Output => Opcode::Buf,
            CellKind::Not => Opcode::Not,
            CellKind::And => Opcode::And,
            CellKind::Or => Opcode::Or,
            CellKind::Nand => Opcode::Nand,
            CellKind::Nor => Opcode::Nor,
            CellKind::Xor => Opcode::Xor,
            CellKind::Xnor => Opcode::Xnor,
            CellKind::Mux => Opcode::Mux,
            CellKind::Input | CellKind::Const(_) | CellKind::Dff => return None,
        })
    }
}

/// Coarse per-net role for strike seeding: what a particle hit on the
/// net's driving cell does, resolved once at compile time so the hot
/// seeding loop never touches `Gate` objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum NetClass {
    /// Combinational cell: a hit injects a transient pulse.
    Comb,
    /// Register: a hit upsets the stored bit directly.
    Dff,
    /// Source or marker cell (input, constant, output): hits are inert.
    Inert,
}

/// The compiled straight-line program of one netlist.
///
/// Ops are sorted by `(logic level, gate id)`, which is a topological
/// order: every op reads only nets written by earlier ops, sources or
/// registers. All indices are dense net numbers (`GateId::index`), so an
/// evaluator works on flat per-net state arrays.
#[derive(Debug, Clone, Default)]
pub struct GateProgram {
    opcode: Vec<Opcode>,
    /// Output net of each op (== the gate's own id).
    out: Vec<u32>,
    /// CSR offsets into `fanin`, one per op plus a terminator.
    fanin_start: Vec<u32>,
    /// Flat fanin net indices, in pin order per op.
    fanin: Vec<u32>,
    /// Propagation delay of each op's cell, ps.
    delay_ps: Vec<f64>,
    /// CSR offsets into the op array, one per logic level plus terminator.
    level_start: Vec<u32>,
    /// CSR offsets into `consumer_ops`, one per net plus a terminator.
    consumer_start: Vec<u32>,
    /// For each net, the ops that read it, ascending op index.
    consumer_ops: Vec<u32>,
    /// `(dff gate, d-pin net)` pairs in [`Netlist::dffs`] order.
    dff_d: Vec<(GateId, u32)>,
    /// Per-net seeding role.
    net_class: Vec<NetClass>,
    nets: u32,
}

impl GateProgram {
    /// Compile `netlist` into a levelized program.
    ///
    /// # Errors
    ///
    /// Fails with [`NetlistError::CombinationalLoop`] when the netlist
    /// cannot be levelized.
    pub fn build(netlist: &Netlist) -> Result<Self, NetlistError> {
        let topo = Topology::new(netlist)?;
        let mut ops: Vec<GateId> = topo.order().to_vec();
        // Kahn's order is topological but not level-grouped; sorting by
        // (level, id) keeps it topological *and* yields contiguous level
        // runs for the per-level stats.
        ops.sort_unstable_by_key(|&g| (topo.level(g), g));

        let nets = netlist.len() as u32;
        let mut p = GateProgram {
            nets,
            ..GateProgram::default()
        };
        p.opcode.reserve(ops.len());
        p.out.reserve(ops.len());
        p.fanin_start.reserve(ops.len() + 1);
        p.fanin_start.push(0);
        let mut consumer_count = vec![0u32; nets as usize + 1];
        let mut cur_level = 0u32;
        p.level_start.push(0);
        for &g in &ops {
            let gate = netlist.gate(g);
            let op = Opcode::from_kind(gate.kind)
                .expect("topological order contains only combinational gates");
            while cur_level < topo.level(g) {
                p.level_start.push(p.opcode.len() as u32);
                cur_level += 1;
            }
            p.opcode.push(op);
            p.out.push(g.0);
            p.delay_ps.push(gate.kind.delay_ps());
            for &f in &gate.fanin {
                p.fanin.push(f.0);
                consumer_count[f.index()] += 1;
            }
            p.fanin_start.push(p.fanin.len() as u32);
        }
        p.level_start.push(p.opcode.len() as u32);

        // Per-net consumer-op CSR (ascending op index because ops are
        // appended in order): the compiled kernel's replacement for the
        // fanout worklist.
        p.consumer_start = vec![0u32; nets as usize + 1];
        for (i, &count) in consumer_count.iter().take(nets as usize).enumerate() {
            p.consumer_start[i + 1] = p.consumer_start[i] + count;
        }
        p.consumer_ops = vec![0u32; p.fanin.len()];
        let mut cursor: Vec<u32> = p.consumer_start[..nets as usize].to_vec();
        for (op_idx, w) in p.fanin_start.windows(2).enumerate() {
            for &f in &p.fanin[w[0] as usize..w[1] as usize] {
                let c = &mut cursor[f as usize];
                p.consumer_ops[*c as usize] = op_idx as u32;
                *c += 1;
            }
        }

        p.dff_d = netlist
            .dffs()
            .iter()
            .map(|&dff| (dff, netlist.gate(dff).fanin[0].0))
            .collect();
        p.net_class = netlist
            .iter()
            .map(|(_, gate)| match gate.kind {
                CellKind::Dff => NetClass::Dff,
                CellKind::Input | CellKind::Const(_) | CellKind::Output => NetClass::Inert,
                _ => NetClass::Comb,
            })
            .collect();
        Ok(p)
    }

    /// Number of ops (combinational gates, including output markers).
    pub fn len(&self) -> usize {
        self.opcode.len()
    }

    /// Whether the program has no ops.
    pub fn is_empty(&self) -> bool {
        self.opcode.is_empty()
    }

    /// Total nets (gates) of the source netlist.
    pub fn nets(&self) -> usize {
        self.nets as usize
    }

    /// Number of logic levels (0 for a program with no ops).
    pub fn levels(&self) -> usize {
        self.level_start.len().saturating_sub(2)
    }

    /// The ops of logic level `l` as a range of op indices.
    pub fn level_ops(&self, l: usize) -> std::ops::Range<usize> {
        self.level_start[l + 1] as usize..self.level_start[l + 2] as usize
    }

    /// Opcode of op `i`.
    #[inline]
    pub fn opcode(&self, i: usize) -> Opcode {
        self.opcode[i]
    }

    /// Output net index of op `i`.
    #[inline]
    pub fn out(&self, i: usize) -> usize {
        self.out[i] as usize
    }

    /// Fanin net indices of op `i`, in pin order.
    #[inline]
    pub fn fanins(&self, i: usize) -> &[u32] {
        &self.fanin[self.fanin_start[i] as usize..self.fanin_start[i + 1] as usize]
    }

    /// Cell propagation delay of op `i`, ps.
    #[inline]
    pub fn delay_ps(&self, i: usize) -> f64 {
        self.delay_ps[i]
    }

    /// The ops consuming net `f`, ascending op index.
    #[inline]
    pub fn consumers(&self, f: usize) -> &[u32] {
        &self.consumer_ops[self.consumer_start[f] as usize..self.consumer_start[f + 1] as usize]
    }

    /// `(dff gate, d-pin net index)` pairs in [`Netlist::dffs`] order.
    pub fn dff_d(&self) -> &[(GateId, u32)] {
        &self.dff_d
    }

    /// Seeding role of net `f`.
    #[inline]
    pub fn net_class(&self, f: usize) -> NetClass {
        self.net_class[f]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Netlist {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g1 = n.add_gate(CellKind::And, &[a, b]);
        let g2 = n.add_gate(CellKind::Not, &[g1]);
        let g3 = n.add_gate(CellKind::Or, &[g2, a]);
        n.add_dff("q", g3);
        n.add_output("y", g3);
        n
    }

    #[test]
    fn program_is_topological_and_levelized() {
        let n = diamond();
        let p = GateProgram::build(&n).unwrap();
        assert_eq!(p.len(), 4); // and, not, or, output marker
        assert_eq!(p.nets(), n.len());
        // Every fanin of op i is written by an earlier op or is a boundary
        // net (source/dff).
        let mut written = vec![false; p.nets()];
        for (id, gate) in n.iter() {
            if gate.kind.is_source() || gate.kind.is_sequential() {
                written[id.index()] = true;
            }
        }
        for i in 0..p.len() {
            for &f in p.fanins(i) {
                assert!(written[f as usize], "op {i} reads unwritten net {f}");
            }
            written[p.out(i)] = true;
        }
        // Levels partition the ops and are non-decreasing.
        let total: usize = (0..p.levels()).map(|l| p.level_ops(l).len()).sum();
        assert_eq!(total, p.len());
    }

    #[test]
    fn consumers_mirror_fanins() {
        let n = diamond();
        let p = GateProgram::build(&n).unwrap();
        for i in 0..p.len() {
            for &f in p.fanins(i) {
                assert!(
                    p.consumers(f as usize).contains(&(i as u32)),
                    "op {i} missing from consumers of net {f}"
                );
            }
        }
        // Ascending op order per net.
        for f in 0..p.nets() {
            assert!(p.consumers(f).windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn output_markers_compile_to_buf_with_zero_delay() {
        let n = diamond();
        let p = GateProgram::build(&n).unwrap();
        let marker = (0..p.len())
            .find(|&i| n.gate(GateId(p.out[i])).kind == CellKind::Output)
            .unwrap();
        assert_eq!(p.opcode(marker), Opcode::Buf);
        assert_eq!(p.delay_ps(marker), 0.0);
    }

    #[test]
    fn dff_d_pairs_follow_dff_order() {
        let n = diamond();
        let p = GateProgram::build(&n).unwrap();
        assert_eq!(p.dff_d().len(), 1);
        let (dff, d) = p.dff_d()[0];
        assert_eq!(n.dffs()[0], dff);
        assert_eq!(n.gate(dff).fanin[0].0, d);
    }

    #[test]
    fn loop_is_an_error() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let g1 = GateId(1);
        let g2 = GateId(2);
        assert_eq!(n.add_gate(CellKind::And, &[a, g2]), g1);
        assert_eq!(n.add_gate(CellKind::Or, &[a, g1]), g2);
        assert!(matches!(
            GateProgram::build(&n),
            Err(NetlistError::CombinationalLoop { .. })
        ));
    }
}
