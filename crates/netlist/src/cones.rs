//! Time-frame fanin/fanout cones of a signal.
//!
//! The pre-characterization of the paper (Observation 1) restricts the attack
//! sample space to the circuit in the fanin and fanout cones of the
//! *responding signals*. Because a bit flip needs one clock cycle per
//! sequential element it crosses, cones are indexed by the **unrolled frame**
//! `i`: a flip at a gate in frame `i >= 0` (fanin side) needs `i` cycles to
//! reach the responding signal, while frames `i < 0` lie on the fanout side
//! (between the responding signal and the core).

use crate::cell::CellKind;
use crate::netlist::{GateId, Netlist};
use std::collections::{BTreeMap, HashSet, VecDeque};

/// The set of gates belonging to one unrolled frame of a cone.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cone {
    gates: Vec<GateId>,
}

impl Cone {
    /// The gates of this frame, sorted by id.
    pub fn iter(&self) -> impl Iterator<Item = &GateId> {
        self.gates.iter()
    }

    /// The gates of this frame as a slice, sorted by id.
    pub fn as_slice(&self) -> &[GateId] {
        &self.gates
    }

    /// Number of gates in the frame.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether the frame is empty.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Binary-search membership test.
    pub fn contains(&self, id: GateId) -> bool {
        self.gates.binary_search(&id).is_ok()
    }
}

/// Cones of one signal across unrolled frames.
///
/// Produced by [`fanin_cone`], [`fanout_cone`] or [`cone_set`]; frame `i >= 0`
/// holds the fanin side, `i < 0` the fanout side.
#[derive(Debug, Clone, Default)]
pub struct ConeSet {
    frames: BTreeMap<i32, Cone>,
}

impl ConeSet {
    /// The cone of frame `i` (empty when the frame was not computed).
    pub fn frame(&self, i: i32) -> &Cone {
        static EMPTY: Cone = Cone { gates: Vec::new() };
        self.frames.get(&i).unwrap_or(&EMPTY)
    }

    /// Iterate `(frame, cone)` in ascending frame order.
    pub fn iter(&self) -> impl Iterator<Item = (i32, &Cone)> {
        self.frames.iter().map(|(&i, c)| (i, c))
    }

    /// The frame indices present, ascending.
    pub fn frame_indices(&self) -> Vec<i32> {
        self.frames.keys().copied().collect()
    }

    /// Union of all frames (deduplicated, sorted).
    pub fn union(&self) -> Vec<GateId> {
        let mut all: Vec<GateId> = self
            .frames
            .values()
            .flat_map(|c| c.gates.iter().copied())
            .collect();
        all.sort_unstable();
        all.dedup();
        all
    }

    /// The DFF registers present in frame `i`.
    pub fn registers_in_frame<'a>(&'a self, netlist: &'a Netlist, i: i32) -> Vec<GateId> {
        self.frame(i)
            .iter()
            .copied()
            .filter(|&g| netlist.gate(g).kind == CellKind::Dff)
            .collect()
    }

    fn insert(&mut self, frame: i32, mut gates: Vec<GateId>) {
        gates.sort_unstable();
        gates.dedup();
        self.frames.insert(frame, Cone { gates });
    }
}

/// Backward combinational closure from a seed set.
///
/// Returns `(gates_in_frame, frontier_dff_d_pins)`: the closure includes the
/// seeds, every combinational gate reached, and every DFF whose *output* is
/// consumed (the DFF belongs to the frame; its D-pin driver seeds the next,
/// earlier frame).
fn backward_closure(netlist: &Netlist, seeds: &[GateId]) -> (Vec<GateId>, Vec<GateId>) {
    let mut seen: HashSet<GateId> = HashSet::new();
    let mut frontier_d = Vec::new();
    let mut queue: VecDeque<GateId> = seeds.iter().copied().collect();
    while let Some(id) = queue.pop_front() {
        if !seen.insert(id) {
            continue;
        }
        let gate = netlist.gate(id);
        match gate.kind {
            CellKind::Dff => frontier_d.push(gate.fanin[0]),
            CellKind::Input | CellKind::Const(_) => {}
            _ => {
                for &f in &gate.fanin {
                    queue.push_back(f);
                }
            }
        }
    }
    (seen.into_iter().collect(), frontier_d)
}

/// Forward combinational closure from a seed set.
///
/// Returns `(gates_in_frame, frontier_dffs)`: the closure includes the seeds,
/// every combinational consumer reached, and every DFF whose D pin consumes a
/// reached signal (the DFF belongs to the frame; its output seeds the next,
/// later frame).
fn forward_closure(
    netlist: &Netlist,
    fanouts: &crate::netlist::FanoutAdjacency,
    seeds: &[GateId],
) -> (Vec<GateId>, Vec<GateId>) {
    let mut seen: HashSet<GateId> = HashSet::new();
    let mut frontier_q = Vec::new();
    let mut queue: VecDeque<GateId> = seeds.iter().copied().collect();
    while let Some(id) = queue.pop_front() {
        if !seen.insert(id) {
            continue;
        }
        let gate = netlist.gate(id);
        if gate.kind == CellKind::Dff && !seeds.contains(&id) {
            frontier_q.push(id);
            continue;
        }
        for &consumer in fanouts.of(id) {
            queue.push_back(consumer);
        }
    }
    (seen.into_iter().collect(), frontier_q)
}

/// Fanin cones of `signal` for frames `0..=max_frame`.
///
/// Frame 0 contains `signal`, its backward combinational closure and the DFFs
/// directly feeding that logic; frame `i+1` continues from the D pins of the
/// DFFs of frame `i`.
pub fn fanin_cone(netlist: &Netlist, signal: GateId, max_frame: u32) -> ConeSet {
    let mut set = ConeSet::default();
    let mut seeds = vec![signal];
    for frame in 0..=max_frame {
        let (gates, frontier_d) = backward_closure(netlist, &seeds);
        if gates.is_empty() {
            break;
        }
        set.insert(frame as i32, gates);
        if frontier_d.is_empty() {
            break;
        }
        seeds = frontier_d;
    }
    set
}

/// Fanout cones of `signal` for frames `-1..=-max_frame`.
///
/// Frame -1 contains the forward combinational closure of `signal` together
/// with the DFFs that latch it; frame `-(i+1)` continues from those DFFs'
/// outputs.
pub fn fanout_cone(netlist: &Netlist, signal: GateId, max_frame: u32) -> ConeSet {
    let fanouts = netlist.fanouts();
    let mut set = ConeSet::default();
    let mut seeds = vec![signal];
    for frame in 1..=max_frame {
        let (mut gates, frontier_q) = forward_closure(netlist, fanouts, &seeds);
        // DFFs reached belong to this frame even though traversal stops there.
        gates.extend(frontier_q.iter().copied());
        if gates.is_empty() {
            break;
        }
        set.insert(-(frame as i32), gates);
        if frontier_q.is_empty() {
            break;
        }
        seeds = frontier_q;
    }
    set
}

/// Combined fanin (`0..=max_fanin_frame`) and fanout (`-1..=-max_fanout_frame`)
/// cones of `signal`, as used by the pre-characterization.
pub fn cone_set(
    netlist: &Netlist,
    signal: GateId,
    max_fanin_frame: u32,
    max_fanout_frame: u32,
) -> ConeSet {
    let mut set = fanin_cone(netlist, signal, max_fanin_frame);
    let out = fanout_cone(netlist, signal, max_fanout_frame);
    for (i, cone) in out.iter() {
        set.insert(i, cone.gates.clone());
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two-stage pipeline:
    ///   a,b -> and1 -> dff1 -> not -> dff2 -> or(out, c)
    fn pipeline() -> (Netlist, [GateId; 6]) {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let and1 = n.add_gate(CellKind::And, &[a, b]);
        let dff1 = n.add_dff("dff1", and1);
        let not1 = n.add_gate(CellKind::Not, &[dff1]);
        let dff2 = n.add_dff("dff2", not1);
        let or1 = n.add_gate(CellKind::Or, &[dff2, c]);
        n.add_output("y", or1);
        (n, [and1, dff1, not1, dff2, or1, c])
    }

    #[test]
    fn fanin_frames_walk_back_through_registers() {
        let (n, [and1, dff1, not1, dff2, or1, c]) = pipeline();
        let cones = fanin_cone(&n, or1, 3);
        // Frame 0: or1, its inputs dff2 and c.
        assert!(cones.frame(0).contains(or1));
        assert!(cones.frame(0).contains(dff2));
        assert!(cones.frame(0).contains(c));
        assert!(!cones.frame(0).contains(not1));
        // Frame 1: not1 (D logic of dff2) and dff1.
        assert!(cones.frame(1).contains(not1));
        assert!(cones.frame(1).contains(dff1));
        assert!(!cones.frame(1).contains(and1));
        // Frame 2: and1 and the PIs a, b.
        assert!(cones.frame(2).contains(and1));
        // Frame 3 empty: PIs terminate the walk.
        assert!(cones.frame(3).is_empty());
    }

    #[test]
    fn fanout_frames_walk_forward_through_registers() {
        let (n, [_, dff1, not1, dff2, or1, _]) = pipeline();
        // Fanout of dff1's D driver region: start from dff1 output.
        let cones = fanout_cone(&n, dff1, 3);
        assert!(cones.frame(-1).contains(not1));
        assert!(cones.frame(-1).contains(dff2));
        assert!(!cones.frame(-1).contains(or1));
        assert!(cones.frame(-2).contains(or1));
        assert!(cones.frame(-3).is_empty());
    }

    #[test]
    fn cone_set_merges_both_sides() {
        let (n, [_, dff1, not1, _, _, _]) = pipeline();
        let cones = cone_set(&n, dff1, 2, 2);
        let idx = cones.frame_indices();
        assert!(idx.contains(&0));
        assert!(idx.contains(&1));
        assert!(idx.contains(&-1));
        assert!(cones.frame(-1).contains(not1));
    }

    #[test]
    fn registers_in_frame_filters_dffs() {
        let (n, [_, dff1, _, dff2, or1, _]) = pipeline();
        let cones = fanin_cone(&n, or1, 2);
        assert_eq!(cones.registers_in_frame(&n, 0), vec![dff2]);
        assert_eq!(cones.registers_in_frame(&n, 1), vec![dff1]);
    }

    #[test]
    fn union_deduplicates() {
        let (n, _) = pipeline();
        let y = n.find("y").unwrap();
        let cones = fanin_cone(&n, y, 5);
        let union = cones.union();
        let mut sorted = union.clone();
        sorted.dedup();
        assert_eq!(union.len(), sorted.len());
        assert!(union.len() <= n.len());
    }

    #[test]
    fn reconvergence_keeps_gate_in_both_frames() {
        // Input x feeds both frame-0 logic and (through a DFF) frame-1 logic:
        //   shared -> or(out, dffq), shared -> dffd
        let mut n = Netlist::new();
        let x = n.add_input("x");
        let shared = n.add_gate(CellKind::Not, &[x]);
        let dff = n.add_dff("r", shared);
        let out = n.add_gate(CellKind::Or, &[shared, dff]);
        n.add_output("y", out);
        let cones = fanin_cone(&n, out, 2);
        assert!(cones.frame(0).contains(shared));
        assert!(cones.frame(1).contains(shared));
    }

    #[test]
    fn cone_of_input_is_just_the_input() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        n.add_output("y", a);
        let cones = fanin_cone(&n, a, 4);
        assert_eq!(cones.frame(0).as_slice(), &[a]);
        assert!(cones.frame(1).is_empty());
    }
}
