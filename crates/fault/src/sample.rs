//! Concrete attack samples `(t, p)`.

use serde::{Deserialize, Serialize};
use xlmc_netlist::GateId;

/// Number of discrete strike-phase bins within a clock cycle.
///
/// The moment of the particle hit within the injection cycle is part of the
/// technique parameter vector `p`: it decides whether the generated
/// transient reaches a flip-flop inside its latching window. The phase is
/// discretized so that the success indicator `e(t, p)` stays a
/// deterministic function of the sample, as in the paper's formulation.
pub const PHASE_BINS: u8 = 8;

/// One sampled fault attack: timing distance plus technique parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttackSample {
    /// Timing distance `t = T_t − T_e` in cycles. The attack is injected
    /// `t` cycles before the target cycle.
    pub t: i64,
    /// Center of the radiated spot.
    pub center: GateId,
    /// Radius of the radiated spot, in placement units.
    pub radius: f64,
    /// Strike-phase bin within the injection cycle (`0..PHASE_BINS`).
    pub phase: u8,
}

impl AttackSample {
    /// The injection cycle for a given target cycle, `None` when the sample
    /// would inject before the start of the benchmark.
    pub fn injection_cycle(&self, target_cycle: u64) -> Option<u64> {
        let te = target_cycle as i64 - self.t;
        (te >= 0).then_some(te as u64)
    }

    /// The strike moment within the injection cycle, at the center of the
    /// sampled phase bin.
    pub fn strike_time_ps(&self, clock_period_ps: f64) -> f64 {
        (f64::from(self.phase) + 0.5) / f64::from(PHASE_BINS) * clock_period_ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injection_cycle_subtracts_timing_distance() {
        let s = AttackSample {
            t: 10,
            center: GateId(0),
            radius: 1.0,
            phase: 0,
        };
        assert_eq!(s.injection_cycle(100), Some(90));
        assert_eq!(s.injection_cycle(10), Some(0));
        assert_eq!(s.injection_cycle(9), None);
    }

    #[test]
    fn negative_t_targets_after_the_target_cycle() {
        // Fanout-side attacks (frames i < 0) inject after T_t.
        let s = AttackSample {
            t: -3,
            center: GateId(0),
            radius: 1.0,
            phase: 0,
        };
        assert_eq!(s.injection_cycle(100), Some(103));
    }

    #[test]
    fn strike_time_is_the_bin_center() {
        let s = AttackSample {
            t: 1,
            center: GateId(0),
            radius: 0.0,
            phase: 0,
        };
        assert!((s.strike_time_ps(800.0) - 50.0).abs() < 1e-9);
        let s = AttackSample {
            phase: PHASE_BINS - 1,
            ..s
        };
        assert!((s.strike_time_ps(800.0) - 750.0).abs() < 1e-9);
    }
}
