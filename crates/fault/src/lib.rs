//! Holistic probabilistic fault-attack models (paper §3.2).
//!
//! The paper models a fault attack by two quantities sampled from random
//! variables: the **timing distance** `t = T_t − T_e` between the target
//! cycle and the injection cycle, and the **technique parameter vector**
//! `p`. For the radiation-based techniques evaluated in the paper,
//! `p = [g, r]`: the center gate and the radius of the radiated spot. The
//! intrinsic uncertainty of the attack — limited temporal accuracy,
//! cycle-to-cycle parameter variation — is captured by the joint
//! distribution `f_{T,P}`.
//!
//! * [`spot`] — the radiated-spot model: which placed cells a strike with
//!   parameters `[g, r]` impacts (following the multiple-event-transient
//!   construction of the paper's ref. \[18\]),
//! * [`distribution`] — the attacker distribution `f_{T,P}` with exact
//!   probability-mass evaluation (needed for importance-sampling weights),
//! * [`sample`] — the concrete attack sample `(t, p)`,
//! * [`batch`] — CSR-packed struck-cell lists for the 64-lane batched
//!   campaign kernel (one spot query per lane, shared storage),
//! * [`multifault`] — the SoK double-glitch mode: a second spot per run,
//!   correlated in time, independent in space, drawn from a
//!   deterministically split child stream.
//!
//! # Example
//!
//! ```
//! use rand::SeedableRng;
//! use xlmc_fault::distribution::{AttackDistribution, RadiusDist, SpatialDist, TemporalDist};
//! use xlmc_netlist::GateId;
//!
//! let f = AttackDistribution {
//!     temporal: TemporalDist::uniform(1, 50),
//!     spatial: SpatialDist::UniformOverCells(vec![GateId(0), GateId(1)]),
//!     radius: RadiusDist::uniform(vec![1.0, 2.0]),
//! };
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let s = f.sample(&mut rng);
//! assert!(f.pmf(&s) > 0.0);
//! ```

pub mod batch;
pub mod distribution;
pub mod multifault;
pub mod sample;
pub mod spot;

pub use batch::LaneStrikes;
pub use distribution::{AttackDistribution, RadiusDist, SpatialDist, TemporalDist};
pub use multifault::DoubleGlitch;
pub use sample::AttackSample;
pub use spot::RadiationSpot;
