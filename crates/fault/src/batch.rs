//! Batched strike construction: one spot query per lane, CSR storage.
//!
//! The 64-lane batched campaign kernel needs each lane's impacted-cell
//! list alive at the same time. Building 64 separate `Vec`s per batch
//! would put the allocator back on the hot path, so the lanes share one
//! flat CSR buffer: lane `l`'s cells are
//! `cells[offsets[l] .. offsets[l + 1]]`, and the whole structure is
//! reused batch after batch.

use xlmc_netlist::{GateId, Placement};

use crate::sample::AttackSample;
use crate::spot::RadiationSpot;

/// The struck-cell lists of one lane batch, CSR layout, reusable.
#[derive(Debug, Clone, Default)]
pub struct LaneStrikes {
    offsets: Vec<u32>,
    cells: Vec<GateId>,
    times: Vec<f64>,
    query: Vec<GateId>,
    query2: Vec<GateId>,
}

impl LaneStrikes {
    /// Drop all lanes (keeps capacity).
    pub fn clear(&mut self) {
        self.offsets.clear();
        self.cells.clear();
        self.times.clear();
    }

    /// Number of lanes recorded.
    pub fn lanes(&self) -> usize {
        self.times.len()
    }

    /// Append one lane: the spot query of `sample` against `placement`
    /// plus the sample's intra-cycle strike moment.
    pub fn push_sample(
        &mut self,
        sample: &AttackSample,
        placement: &Placement,
        clock_period_ps: f64,
    ) {
        self.push_sample_with(sample, None, placement, clock_period_ps);
    }

    /// [`LaneStrikes::push_sample`] with an optional secondary spot (the
    /// double-glitch mode): the lane's cell list is the sorted, deduplicated
    /// union of both spot queries — exactly what the scalar path produces
    /// when it merges the second spot into its struck buffer.
    pub fn push_sample_with(
        &mut self,
        sample: &AttackSample,
        second: Option<&RadiationSpot>,
        placement: &Placement,
        clock_period_ps: f64,
    ) {
        if self.offsets.is_empty() {
            self.offsets.push(0);
        }
        let spot = RadiationSpot {
            center: sample.center,
            radius: sample.radius,
        };
        spot.impacted_cells_into(placement, &mut self.query);
        if let Some(extra) = second {
            extra.impacted_cells_into(placement, &mut self.query2);
            self.query.extend_from_slice(&self.query2);
            self.query.sort_unstable();
            self.query.dedup();
        }
        self.cells.extend_from_slice(&self.query);
        self.offsets.push(self.cells.len() as u32);
        self.times.push(sample.strike_time_ps(clock_period_ps));
    }

    /// Lane `l`'s struck cells.
    pub fn struck(&self, lane: usize) -> &[GateId] {
        let lo = self.offsets[lane] as usize;
        let hi = self.offsets[lane + 1] as usize;
        &self.cells[lo..hi]
    }

    /// Lane `l`'s strike moment within the cycle, in picoseconds.
    pub fn strike_time_ps(&self, lane: usize) -> f64 {
        self.times[lane]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xlmc_netlist::{CellKind, Netlist};

    fn chain(cells: usize) -> Netlist {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let mut prev = a;
        for _ in 0..cells {
            prev = n.add_gate(CellKind::Buf, &[prev]);
        }
        n.add_output("y", prev);
        n
    }

    #[test]
    fn lanes_match_individual_spot_queries() {
        let n = chain(40);
        let p = Placement::new(&n);
        let period = 1200.0;
        let mut batch = LaneStrikes::default();
        let samples: Vec<AttackSample> = p
            .placeable()
            .iter()
            .step_by(3)
            .enumerate()
            .map(|(i, &c)| AttackSample {
                t: 1 + i as i64,
                center: c,
                radius: (i % 4) as f64 * 0.9,
                phase: (i % 8) as u8,
            })
            .collect();
        for s in &samples {
            batch.push_sample(s, &p, period);
        }
        assert_eq!(batch.lanes(), samples.len());
        for (l, s) in samples.iter().enumerate() {
            let want = RadiationSpot {
                center: s.center,
                radius: s.radius,
            }
            .impacted_cells(&p);
            assert_eq!(batch.struck(l), &want[..], "lane {l}");
            assert_eq!(batch.strike_time_ps(l), s.strike_time_ps(period));
        }
    }

    #[test]
    fn clear_resets_lanes_but_reuses_storage() {
        let n = chain(20);
        let p = Placement::new(&n);
        let mut batch = LaneStrikes::default();
        let s = AttackSample {
            t: 1,
            center: p.placeable()[5],
            radius: 2.0,
            phase: 0,
        };
        batch.push_sample(&s, &p, 1000.0);
        let first = batch.struck(0).to_vec();
        batch.clear();
        assert_eq!(batch.lanes(), 0);
        batch.push_sample(&s, &p, 1000.0);
        assert_eq!(batch.struck(0), &first[..]);
    }

    #[test]
    fn secondary_spot_lane_is_the_sorted_deduped_union() {
        let n = chain(40);
        let p = Placement::new(&n);
        let mut batch = LaneStrikes::default();
        let s = AttackSample {
            t: 2,
            center: p.placeable()[10],
            radius: 1.5,
            phase: 3,
        };
        // Overlapping secondary spot: the union must dedup the shared cells.
        let second = RadiationSpot {
            center: p.placeable()[12],
            radius: 1.5,
        };
        batch.push_sample_with(&s, Some(&second), &p, 1000.0);
        let mut want = RadiationSpot {
            center: s.center,
            radius: s.radius,
        }
        .impacted_cells(&p);
        want.extend(second.impacted_cells(&p));
        want.sort_unstable();
        want.dedup();
        assert_eq!(batch.struck(0), &want[..]);
        // A disjoint far-away secondary contributes its own cells.
        let far = RadiationSpot {
            center: p.placeable()[35],
            radius: 0.0,
        };
        batch.push_sample_with(&s, Some(&far), &p, 1000.0);
        assert!(batch.struck(1).contains(&p.placeable()[35]));
        // And `None` stays byte-identical to the single-spot path.
        batch.push_sample(&s, &p, 1000.0);
        let solo = RadiationSpot {
            center: s.center,
            radius: s.radius,
        }
        .impacted_cells(&p);
        assert_eq!(batch.struck(2), &solo[..]);
    }

    #[test]
    fn empty_lane_from_unplaced_center() {
        let n = chain(10);
        let p = Placement::new(&n);
        let mut batch = LaneStrikes::default();
        // Input markers are unplaced: the spot query is empty.
        let s = AttackSample {
            t: 1,
            center: n.inputs()[0],
            radius: 5.0,
            phase: 0,
        };
        batch.push_sample(&s, &p, 1000.0);
        assert!(batch.struck(0).is_empty());
    }
}
