//! The attacker distribution `f_{T,P}` with exact mass evaluation.
//!
//! Paper §3.2: "Due to the temporal accuracy and parameter variation of the
//! attack techniques, we assume the corresponding random variable T and P
//! follow a uniform distribution with the range centered at the targeted
//! time and expected parameter." The experiments of Figure 11 vary exactly
//! these ranges, so every component exposes both sampling and probability
//! mass (the masses feed the importance-sampling weights `f/g`).

use crate::sample::{AttackSample, PHASE_BINS};
use rand::Rng;
use serde::{Deserialize, Serialize};
use xlmc_netlist::GateId;

/// Distribution of the timing distance `T` (discrete uniform over cycles).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TemporalDist {
    min: i64,
    max: i64,
}

impl TemporalDist {
    /// Uniform over the inclusive cycle range `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics when `min > max`.
    pub fn uniform(min: i64, max: i64) -> Self {
        assert!(min <= max, "empty temporal range");
        Self { min, max }
    }

    /// A deterministic injection time (perfect temporal accuracy).
    pub fn delta(t: i64) -> Self {
        Self { min: t, max: t }
    }

    /// The inclusive support `[min, max]`.
    pub fn support(&self) -> (i64, i64) {
        (self.min, self.max)
    }

    /// Number of cycles in the support.
    pub fn len(&self) -> u64 {
        (self.max - self.min + 1) as u64
    }

    /// Whether the support is a single cycle.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draw a timing distance.
    pub fn sample(&self, rng: &mut impl Rng) -> i64 {
        rng.gen_range(self.min..=self.max)
    }

    /// Probability mass of a timing distance.
    pub fn pmf(&self, t: i64) -> f64 {
        if (self.min..=self.max).contains(&t) {
            1.0 / self.len() as f64
        } else {
            0.0
        }
    }
}

/// Distribution of the spot center (the spatial accuracy of Figure 11(b)).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpatialDist {
    /// Uniform over a candidate cell set (worst spatial accuracy: "uniform
    /// distribution over all the gates").
    UniformOverCells(Vec<GateId>),
    /// Perfect aim at one cell ("delta function centered at target gates").
    Delta(GateId),
}

impl SpatialDist {
    /// Draw a center cell.
    ///
    /// # Panics
    ///
    /// Panics when a uniform candidate set is empty.
    pub fn sample(&self, rng: &mut impl Rng) -> GateId {
        match self {
            SpatialDist::UniformOverCells(cells) => {
                assert!(!cells.is_empty(), "empty spatial candidate set");
                cells[rng.gen_range(0..cells.len())]
            }
            SpatialDist::Delta(g) => *g,
        }
    }

    /// Probability mass of a center cell.
    pub fn pmf(&self, g: GateId) -> f64 {
        match self {
            SpatialDist::UniformOverCells(cells) => {
                if cells.contains(&g) {
                    1.0 / cells.len() as f64
                } else {
                    0.0
                }
            }
            SpatialDist::Delta(target) => {
                if *target == g {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

/// Distribution of the spot radius (discrete uniform over options).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RadiusDist {
    options: Vec<f64>,
}

impl RadiusDist {
    /// Uniform over a discrete set of radii.
    ///
    /// # Panics
    ///
    /// Panics when `options` is empty.
    pub fn uniform(options: Vec<f64>) -> Self {
        assert!(!options.is_empty(), "empty radius option set");
        Self { options }
    }

    /// A fixed radius.
    pub fn fixed(r: f64) -> Self {
        Self { options: vec![r] }
    }

    /// The available radii.
    pub fn options(&self) -> &[f64] {
        &self.options
    }

    /// Draw a radius.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        self.options[rng.gen_range(0..self.options.len())]
    }

    /// Probability mass of a radius.
    pub fn pmf(&self, r: f64) -> f64 {
        if self.options.contains(&r) {
            1.0 / self.options.len() as f64
        } else {
            0.0
        }
    }
}

/// The joint attacker distribution `f_{T,P}` (independent components).
///
/// The strike phase within the cycle is always uniform over
/// [`PHASE_BINS`] bins — the attacker has no sub-cycle aim.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackDistribution {
    /// Timing-distance distribution.
    pub temporal: TemporalDist,
    /// Spot-center distribution.
    pub spatial: SpatialDist,
    /// Spot-radius distribution.
    pub radius: RadiusDist,
}

impl AttackDistribution {
    /// Draw one attack sample `(t, p)`.
    pub fn sample(&self, rng: &mut impl Rng) -> AttackSample {
        AttackSample {
            t: self.temporal.sample(rng),
            center: self.spatial.sample(rng),
            radius: self.radius.sample(rng),
            phase: rng.gen_range(0..PHASE_BINS),
        }
    }

    /// Joint probability mass `f_{T,P}(t, p)`.
    pub fn pmf(&self, s: &AttackSample) -> f64 {
        if s.phase >= PHASE_BINS {
            return 0.0;
        }
        self.temporal.pmf(s.t) * self.spatial.pmf(s.center) * self.radius.pmf(s.radius)
            / f64::from(PHASE_BINS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn temporal_uniform_mass_sums_to_one() {
        let d = TemporalDist::uniform(1, 50);
        let total: f64 = (1..=50).map(|t| d.pmf(t)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(d.pmf(0), 0.0);
        assert_eq!(d.pmf(51), 0.0);
        assert_eq!(d.len(), 50);
    }

    #[test]
    fn temporal_samples_stay_in_support() {
        let d = TemporalDist::uniform(-5, 5);
        let mut r = rng();
        for _ in 0..1000 {
            let t = d.sample(&mut r);
            assert!((-5..=5).contains(&t));
        }
    }

    #[test]
    fn temporal_samples_cover_the_support() {
        let d = TemporalDist::uniform(1, 10);
        let mut r = rng();
        let mut seen = [false; 10];
        for _ in 0..2000 {
            seen[(d.sample(&mut r) - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all cycles should be drawn");
    }

    #[test]
    fn temporal_delta_is_deterministic() {
        let d = TemporalDist::delta(7);
        let mut r = rng();
        assert_eq!(d.sample(&mut r), 7);
        assert_eq!(d.pmf(7), 1.0);
        assert_eq!(d.pmf(8), 0.0);
    }

    #[test]
    fn spatial_uniform_and_delta_masses() {
        let cells = vec![GateId(1), GateId(2), GateId(3), GateId(4)];
        let u = SpatialDist::UniformOverCells(cells.clone());
        assert_eq!(u.pmf(GateId(1)), 0.25);
        assert_eq!(u.pmf(GateId(9)), 0.0);
        let d = SpatialDist::Delta(GateId(2));
        assert_eq!(d.pmf(GateId(2)), 1.0);
        assert_eq!(d.pmf(GateId(1)), 0.0);
        let mut r = rng();
        for _ in 0..100 {
            assert!(cells.contains(&u.sample(&mut r)));
            assert_eq!(d.sample(&mut r), GateId(2));
        }
    }

    #[test]
    fn radius_mass_and_sampling() {
        let d = RadiusDist::uniform(vec![1.0, 2.0, 4.0]);
        assert!((d.pmf(2.0) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(d.pmf(3.0), 0.0);
        let f = RadiusDist::fixed(2.5);
        assert_eq!(f.pmf(2.5), 1.0);
        let mut r = rng();
        for _ in 0..100 {
            assert!(d.options().contains(&d.sample(&mut r)));
        }
    }

    #[test]
    fn joint_mass_is_product_and_normalized() {
        let f = AttackDistribution {
            temporal: TemporalDist::uniform(1, 5),
            spatial: SpatialDist::UniformOverCells(vec![GateId(0), GateId(1)]),
            radius: RadiusDist::uniform(vec![1.0, 2.0]),
        };
        let mut total = 0.0;
        for t in 1..=5 {
            for g in [GateId(0), GateId(1)] {
                for r in [1.0, 2.0] {
                    for phase in 0..PHASE_BINS {
                        total += f.pmf(&AttackSample {
                            t,
                            center: g,
                            radius: r,
                            phase,
                        });
                    }
                }
            }
        }
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn joint_samples_have_positive_mass() {
        let f = AttackDistribution {
            temporal: TemporalDist::uniform(1, 50),
            spatial: SpatialDist::UniformOverCells(vec![GateId(3), GateId(7)]),
            radius: RadiusDist::uniform(vec![0.5, 1.5]),
        };
        let mut r = rng();
        for _ in 0..200 {
            let s = f.sample(&mut r);
            assert!(f.pmf(&s) > 0.0);
        }
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let f = AttackDistribution {
            temporal: TemporalDist::uniform(1, 50),
            spatial: SpatialDist::UniformOverCells(vec![GateId(3), GateId(7)]),
            radius: RadiusDist::uniform(vec![0.5, 1.5]),
        };
        let a: Vec<AttackSample> = {
            let mut r = StdRng::seed_from_u64(9);
            (0..20).map(|_| f.sample(&mut r)).collect()
        };
        let b: Vec<AttackSample> = {
            let mut r = StdRng::seed_from_u64(9);
            (0..20).map(|_| f.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty temporal range")]
    fn inverted_temporal_range_panics() {
        let _ = TemporalDist::uniform(5, 1);
    }
}
