//! Correlated multi-fault (double-glitch) campaign mode.
//!
//! The fault-attack SoK (arXiv:2509.18341) makes multi-fault injection the
//! modern attacker baseline: two glitches delivered in one shot, tightly
//! correlated in *time* (one trigger, one timing circuit) but independent
//! in *space* (two emitters aimed at different die locations). This module
//! models that as a second [`RadiationSpot`] drawn per run:
//!
//! * **correlated in time** — the second strike shares the primary
//!   sample's timing distance `t`, phase bin and therefore injection
//!   cycle and strike moment;
//! * **independent in space** — the second center and radius are fresh
//!   draws from the nominal (un-tilted) spatial/radius distributions.
//!
//! # Deterministic stream splitting
//!
//! The campaign engine owns one SplitMix64 stream per run and demands
//! bit-identical results across kernels and thread counts, so the second
//! spot cannot simply share the primary stream: the scalar, batched and
//! compiled kernels interleave their draws differently. Instead the engine
//! draws **exactly one** `u64` of entropy from the per-run stream and
//! hands it here; [`DoubleGlitch::second_spot`] expands it into a private
//! child SplitMix64 stream (same Stafford mix13 finalizer as the engine's
//! generator) and samples the secondary spot from that. However many draws
//! the secondary distributions consume, the per-run stream advances by one
//! word — the split is a pure function of the entropy word.
//!
//! Because the second spot is drawn from the *nominal* distribution in
//! both the attacker density `f` and every proposal `g`, its likelihood
//! ratio contributes a factor of one: importance weights are unchanged.

use crate::distribution::{RadiusDist, SpatialDist};
use crate::spot::RadiationSpot;
use rand::RngCore;

/// 2⁶⁴ / φ, the SplitMix64 Weyl increment (matches the engine's RNG).
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The SplitMix64 finalizer (Stafford mix13).
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The child stream expanded from one word of per-run entropy.
#[derive(Debug, Clone)]
struct ChildRng {
    state: u64,
}

impl ChildRng {
    #[inline]
    fn split_from(entropy: u64) -> Self {
        // Double-mix, like the engine's `for_run` derivation, so entropy
        // words that differ in few bits still head unrelated streams.
        Self {
            state: mix(mix(entropy ^ GOLDEN_GAMMA)),
        }
    }
}

impl RngCore for ChildRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix(self.state)
    }
}

/// The double-glitch campaign mode: per-run secondary strike model.
#[derive(Debug, Clone)]
pub struct DoubleGlitch {
    /// Spatial distribution of the secondary spot center (nominal).
    pub spatial: SpatialDist,
    /// Radius distribution of the secondary spot (nominal).
    pub radius: RadiusDist,
}

impl DoubleGlitch {
    /// Build the mode from the nominal secondary-strike distributions.
    pub fn new(spatial: SpatialDist, radius: RadiusDist) -> Self {
        Self { spatial, radius }
    }

    /// The secondary spot for one run, a pure function of the entropy word
    /// split off that run's stream.
    pub fn second_spot(&self, entropy: u64) -> RadiationSpot {
        let mut rng = ChildRng::split_from(entropy);
        let center = self.spatial.sample(&mut rng);
        let radius = self.radius.sample(&mut rng);
        RadiationSpot { center, radius }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xlmc_netlist::GateId;

    fn glitch() -> DoubleGlitch {
        DoubleGlitch::new(
            SpatialDist::UniformOverCells((0..64u32).map(GateId).collect()),
            RadiusDist::uniform(vec![0.0, 1.0, 2.5]),
        )
    }

    #[test]
    fn second_spot_is_a_pure_function_of_the_entropy_word() {
        let g = glitch();
        for entropy in [0u64, 1, 0xdead_beef, u64::MAX] {
            let a = g.second_spot(entropy);
            let b = g.second_spot(entropy);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn different_entropy_words_decorrelate() {
        let g = glitch();
        let distinct: std::collections::HashSet<_> = (0..512u64)
            .map(|e| {
                let s = g.second_spot(e);
                (s.center, s.radius.to_bits())
            })
            .collect();
        // 64 centers x 3 radii = 192 possible spots; a correlated child
        // stream would collapse far below that.
        assert!(
            distinct.len() > 100,
            "only {} distinct spots",
            distinct.len()
        );
    }

    #[test]
    fn draws_come_from_the_nominal_support() {
        let g = glitch();
        for e in 0..256u64 {
            let s = g.second_spot(e);
            assert!(s.center.0 < 64);
            assert!([0.0, 1.0, 2.5].contains(&s.radius));
        }
    }
}
