//! The radiated-spot model: from `p = [g, r]` to the impacted cell set.
//!
//! Paper §3.2: "We assume one radiation can cause voltage transients at all
//! the gates that are in the radiated region and leverage the method in
//! \[18\] to determine all the impacted gates based on g and r." On our
//! placed netlist that is a Euclidean radius query around the center cell.

use serde::{Deserialize, Serialize};
use xlmc_netlist::{GateId, Placement};

/// A radiated spot: the technique parameter vector `p` of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RadiationSpot {
    /// Center cell of the radiation.
    pub center: GateId,
    /// Radius in placement units.
    pub radius: f64,
}

impl RadiationSpot {
    /// All placed cells inside the spot (always includes the center when
    /// it is a placed cell).
    pub fn impacted_cells(&self, placement: &Placement) -> Vec<GateId> {
        placement.cells_within(self.center, self.radius)
    }

    /// [`RadiationSpot::impacted_cells`] into a caller-owned buffer
    /// (cleared first).
    pub fn impacted_cells_into(&self, placement: &Placement, out: &mut Vec<GateId>) {
        placement.cells_within_into(self.center, self.radius, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xlmc_netlist::{CellKind, Netlist};

    fn grid_netlist(cells: usize) -> Netlist {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let mut prev = a;
        for _ in 0..cells {
            prev = n.add_gate(CellKind::Buf, &[prev]);
        }
        n.add_output("y", prev);
        n
    }

    #[test]
    fn zero_radius_hits_only_the_center() {
        let n = grid_netlist(25);
        let p = Placement::new(&n);
        let center = p.placeable()[7];
        let spot = RadiationSpot {
            center,
            radius: 0.0,
        };
        assert_eq!(spot.impacted_cells(&p), vec![center]);
    }

    #[test]
    fn larger_radius_hits_more_cells_monotonically() {
        let n = grid_netlist(49);
        let p = Placement::new(&n);
        let center = p.placeable()[24];
        let mut last = 0;
        for r in [0.0, 1.0, 1.5, 2.5, 4.0] {
            let hit = RadiationSpot { center, radius: r }.impacted_cells(&p).len();
            assert!(hit >= last, "radius {r}: {hit} < {last}");
            last = hit;
        }
        assert!(last > 5);
    }

    #[test]
    fn huge_radius_covers_the_whole_die() {
        let n = grid_netlist(30);
        let p = Placement::new(&n);
        let spot = RadiationSpot {
            center: p.placeable()[0],
            radius: 1e6,
        };
        assert_eq!(spot.impacted_cells(&p).len(), p.placeable().len());
    }
}
